// Concurrent job-runner & portfolio subsystem.
//
// The four engines in src/reach win on different circuits (the same
// engine-selection sensitivity Goel & Bryant report across the ISCAS
// circuits), and a bdd::Manager is documented single-threaded — so the
// natural scaling unit is the *job*: one circuit + one engine + one fresh
// BDD universe, executed to completion (or to a deadline) on one worker
// thread. This module provides:
//
//  * JobSpec -> JobResult: one engine invocation with a wall-clock deadline
//    and cooperative cancellation, every failure mode folded into a
//    RunStatus instead of an escaping exception.
//  * WorkerPool: a fixed-size pool; each worker thread owns the single live
//    Manager it runs jobs on (created fresh per job so node budgets, caches
//    and variable orders never leak between jobs, and never shared across
//    threads).
//  * Portfolio mode: launch the same circuit under N engines sharing one
//    CancelToken; the first conclusive winner cancels the rest.
//
// Cancellation is cooperative end to end: the worker installs a
// Manager::setInterruptCheck callback that watches the job's CancelToken
// and deadline; the manager polls it at node-allocation / GC / reordering
// boundaries and throws bdd::Interrupted, which the engines surface as
// RunStatus::kTimeOut / kCancelled with the manager still usable for the
// worker's next job.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/orders.hpp"
#include "reach/engine.hpp"

namespace bfvr::run {

/// Cancellation flag shared between a controller and the workers running
/// the jobs it may want to stop. Sticky: once cancelled, stays cancelled.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Engine selector, superset of the bench harness's RunSpec::Engine (adds
/// the hybrid split/conjoin engine, so a 4-way portfolio covers all the
/// image strategies the codebase implements).
enum class EngineKind : std::uint8_t {
  kTr,      ///< partitioned transition relations, IWLS95 schedule
  kTrMono,  ///< monolithic transition relation
  kCbm,     ///< Coudert/Berthet/Madre Fig. 1 flow
  kBfv,     ///< the paper's Fig. 2 flow on functional vectors
  kCdec,    ///< Fig. 2 on the conjunctive decomposition
  kHybrid,  ///< per-iteration split-vs-conjoin chooser
  kLz,      ///< logical-zonotope backend (src/lz): exact on XOR-affine
            ///< circuits, sound over-approximating pre-filter elsewhere;
            ///< the only engine that never builds a BDD manager
};

/// "tr" / "tr-mono" / "cbm" / "bfv" / "cdec" / "hybrid" / "lz".
const char* to_string(EngineKind e) noexcept;
/// Inverse of to_string; throws std::invalid_argument naming the known
/// engines on an unknown tag.
EngineKind parseEngineKind(const std::string& s);
/// Every engine kind, in to_string order — the registry the CLI's
/// --list-engines and the unknown-engine diagnostic enumerate.
std::span<const EngineKind> allEngineKinds() noexcept;

/// Retry escalation for jobs that run out of nodes. Attempt 1 runs the
/// spec as given; when it ends kMemOut (and only then — a timeout or an
/// error would fail the same way again) the job is re-run on a fresh
/// manager with the next escalation applied cumulatively:
///
///   attempt 2: enable auto-reorder and the manager's pressure ladder
///   attempt 3: shrink the computed cache (cache_bits - 2, floor 12)
///   attempt 4+: raise the node budgets by `node_budget_growth` (compounds)
///
/// When the spec checkpoints (ReachOptions::checkpoint_*), every retry
/// resumes from the latest snapshot instead of restarting the fixpoint —
/// the escalation path the paper's long-running circuits want.
struct RetryPolicy {
  /// Total attempts including the first; 1 = never retry.
  unsigned max_attempts = 1;
  /// Sleep before attempt k: backoff_seconds * 2^(k-2) (exponential).
  /// Cancellation is honoured during the wait.
  double backoff_seconds = 0.0;
  /// Budget multiplier of the raise-budget escalation step.
  double node_budget_growth = 2.0;
  /// Resume retries from ReachOptions::checkpoint_path when it exists.
  bool resume_from_checkpoint = true;
};

/// Per-worker cache of one live bdd::Manager reused across jobs
/// (reset-not-destroy): release() resets the finished job's manager back
/// to the pristine zero-variable state — keeping the node store and
/// computed-cache allocations warm — and acquire() reconfigures it for the
/// next job's config. A job on a reused manager is bit-identical to one on
/// a fresh manager (Manager::resetForReuse clears every counter, threshold
/// and the variable order), so warm reuse is purely a cold-start saving.
/// A manager whose job leaked live handles fails the reset and is
/// destroyed instead, with the leak counted — the serving layer's
/// node-accounting line items. Not thread-safe: each worker owns its own
/// cache; the stats counters alone are safe to read cross-thread.
class ManagerCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< jobs served a reused warm manager
    std::uint64_t misses = 0;  ///< jobs that had to build a fresh manager
    std::uint64_t resets_failed = 0;  ///< managers destroyed: reset failed
    std::uint64_t leaked_nodes = 0;   ///< live nodes found at failed resets

    Stats& operator+=(const Stats& o) noexcept {
      hits += o.hits;
      misses += o.misses;
      resets_failed += o.resets_failed;
      leaked_nodes += o.leaked_nodes;
      return *this;
    }
  };

  /// A warm manager reconfigured for `cfg` when one is cached, else a
  /// fresh Manager(0, cfg).
  std::unique_ptr<bdd::Manager> acquire(const bdd::Manager::Config& cfg);
  /// Try to reset `m` for reuse; destroy it (counting the leak) otherwise.
  void release(std::unique_ptr<bdd::Manager> m);

  Stats stats() const noexcept;

 private:
  std::unique_ptr<bdd::Manager> cached_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> resets_failed_{0};
  std::atomic<std::uint64_t> leaked_nodes_{0};
};

/// Everything needed to run one reachability job on a fresh manager.
struct JobSpec {
  /// Report key; defaults to "<circuit>/<engine>" when empty.
  std::string name;
  /// Circuit source: a `.bench` file path, or a generator spec
  /// `gen:<kind>:<args>` (see resolveCircuit for the accepted kinds).
  std::string circuit;
  EngineKind engine = EngineKind::kBfv;
  circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};
  /// Engine options; budget/trace/reorder policy all apply per job.
  reach::ReachOptions opts;
  /// Configuration of the job's fresh BDD universe (hard node budget,
  /// cache size, auto-reorder trigger).
  bdd::Manager::Config mgr;
  /// Wall-clock deadline covering the whole job — circuit setup included,
  /// unlike ReachOptions::budget.max_seconds which the engine only starts
  /// counting once it runs. 0 = none. Enforced through the interrupt hook,
  /// and also folded into the engine budget so tiny jobs that never hit a
  /// poll point still observe it.
  double deadline_seconds = 0.0;
  /// Out-of-memory retry escalation (default: no retries).
  RetryPolicy retry;
  /// Deterministic fault plan installed on each attempt's fresh manager
  /// (empty = none). Attempt clocks restart per attempt, so a plan that
  /// fires on attempt 1 fires identically on attempt 2 unless the
  /// escalation changed the allocation sequence.
  bdd::FaultPlan faults;
  /// In-memory checkpoint image (io::encode bytes) to resume from on the
  /// FIRST attempt — the serving layer's eviction/migration unit, letting a
  /// job suspended on one worker continue on another without touching the
  /// filesystem. Shared so requeued copies don't duplicate the snapshot.
  /// A corrupt or mismatched image falls back to a fresh run: the fixpoint
  /// is the same either way, only the recomputation differs.
  std::shared_ptr<const std::vector<std::uint8_t>> resume_image;
  /// Observability pass-through: the serving layer's span trace id, so a
  /// requeued/migrated copy of the job stays attached to the same span.
  /// 0 = untraced (batch runner, tests). Never affects execution.
  std::uint64_t trace_id = 0;
  /// Logical-zonotope engine (kLz) extras, ignored by the BDD engines:
  /// the pre-filter target — name of a primary output whose reachability
  /// (output == 1) the run decides, "" for a plain state count — and the
  /// member cap before the reached set folds into its affine hull.
  std::string lz_target;
  std::size_t lz_merge = 64;

  std::string displayName() const;
};

/// One executed attempt of a job (JobResult::attempts).
struct AttemptRecord {
  RunStatus status = RunStatus::kError;
  /// Failure reason (ReachResult::message / exception text); empty if done.
  std::string message;
  double seconds = 0.0;
  /// Escalation applied to this attempt: "" for the first, then
  /// "auto-reorder+ladder", "cache-shrink", "raise-budget".
  std::string escalation;
  /// Whether this attempt resumed from a checkpoint file.
  bool resumed = false;
  /// Faults the manager injected during this attempt.
  std::uint64_t faults_injected = 0;
};

/// Outcome of one job. The reached set itself does not survive the job
/// (it lives in the worker's manager, which is torn down with the job);
/// consumers get the stats, status and optional trace.
struct JobResult {
  RunStatus status = RunStatus::kError;
  /// Why the job did not complete: exception text for kError, budget and
  /// live-node count for kMemOut, time budget/deadline for kTimeOut, the
  /// interrupt reason for kCancelled. Empty for kDone.
  std::string message;
  /// Engine metrics; default-constructed when setup failed before the
  /// engine ran (iterations == 0, states == 0). From the final attempt.
  reach::ReachResult reach;
  /// One record per executed attempt (size >= 1; > 1 only under a
  /// RetryPolicy after kMemOut attempts).
  std::vector<AttemptRecord> attempts;
  double seconds = 0.0;        ///< execution wall-clock, all attempts
  double queue_seconds = 0.0;  ///< time the job waited for a free worker
  unsigned worker = 0;         ///< index of the worker that ran it

  /// Retries consumed (attempts beyond the first).
  unsigned retriesUsed() const noexcept {
    return attempts.empty() ? 0
                            : static_cast<unsigned>(attempts.size()) - 1;
  }
};

/// Materialize a JobSpec's circuit: parse the `.bench` file, or build the
/// generator. Accepted generator specs: gen:counter:<bits>:<mod>,
/// gen:johnson:<bits>, gen:lfsr:<bits>, gen:twinshift:<bits>,
/// gen:arbiter:<clients>, gen:fifo:<ptr_bits>, gen:gray:<bits>,
/// gen:crc:<bits>, gen:random:<latches>:<inputs>:<gates>:<seed>.
/// Throws std::invalid_argument / std::runtime_error on a bad spec.
circuit::Netlist resolveCircuit(const std::string& spec);

/// Run one job to completion on the calling thread: per-attempt manager
/// (fresh, or reused from `warm` when given), deadline + cancellation wired
/// to the interrupt hook, engine dispatched by kind, NodeBudgetExceeded /
/// Interrupted / any setup exception folded into the result status. Never
/// throws.
JobResult executeJob(const JobSpec& spec, const CancelToken* cancel = nullptr,
                     ManagerCache* warm = nullptr) noexcept;

/// Fixed-size worker pool executing JobSpecs FIFO. Each worker thread runs
/// executeJob — one manager alive per worker at a time, never shared. With
/// `warm_managers`, each worker keeps its manager alive between jobs
/// through a ManagerCache (reset-not-destroy), the serving layer's
/// cold-start saving.
class WorkerPool {
 public:
  /// Submit `avoid_worker` wildcard: any worker may run the job.
  static constexpr unsigned kAnyWorker = ~0u;

  /// `workers` is clamped to at least 1.
  explicit WorkerPool(unsigned workers, bool warm_managers = false);
  /// Drains the queue (pending jobs still run; cancel them through their
  /// tokens for a fast exit) and joins the workers.
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueue a job. `cancel` (optional) is polled by the job's manager;
  /// `on_done` (optional) fires on the worker thread right before the
  /// future is fulfilled — the portfolio uses it to cancel the siblings of
  /// the first winner with no controller round-trip. `avoid_worker` steers
  /// the job away from one worker index — the migration half of
  /// eviction-via-checkpoint: a resumed job lands on a different worker
  /// than the one it was suspended on. Ignored on a 1-worker pool, and
  /// during shutdown-drain any worker may take the job (liveness over
  /// placement).
  std::future<JobResult> submit(
      JobSpec spec, std::shared_ptr<CancelToken> cancel = nullptr,
      std::function<void(const JobResult&)> on_done = {},
      unsigned avoid_worker = kAnyWorker);

  /// Aggregated warm-manager stats across the workers (all zero when the
  /// pool was built without warm_managers). Counter reads are safe at any
  /// time; they are exact once the pool is idle.
  ManagerCache::Stats warmStats() const noexcept;

 private:
  struct Queued;
  void workerMain(unsigned index);

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<ManagerCache>> caches_;  // empty unless warm
  std::deque<std::unique_ptr<Queued>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// Result of racing one circuit under several engines.
struct PortfolioResult {
  /// One result per variant, in `engines` order (not finish order).
  std::vector<JobResult> jobs;
  /// Index (into `jobs`) of the first variant to *finish* with kDone;
  /// -1 when no variant concluded (all timed out / ran out of nodes).
  int winner = -1;
  double seconds = 0.0;  ///< wall-clock of the whole race
};

/// Launch `base` once per engine on the pool, all variants sharing one
/// CancelToken; the first variant to finish with kDone cancels the rest.
/// Blocks until every variant has returned (winners, losers and all).
PortfolioResult runPortfolio(WorkerPool& pool, const JobSpec& base,
                             std::span<const EngineKind> engines);

}  // namespace bfvr::run
