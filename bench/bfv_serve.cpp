// Reachability-as-a-service daemon: a long-lived multi-tenant job server
// over the framed binary protocol (src/svc). Clients connect with
// bfv_client (or the svc::Client library), submit manifest-format job
// lines, and stream back iteration progress and final results; the server
// schedules across tenants with smooth weighted round-robin under
// per-tenant budgets, reuses warm per-worker managers, and evicts/migrates
// jobs via checkpoints.
//
//   bfv_serve [--listen SPEC] [--workers N] [--tenants FILE] [--spool DIR]
//             [--checkpoint-every K] [--no-warm] [--no-stream]
//             [--report[=path]] [--name TAG] [--metrics-every S]
//             [--metrics-dir DIR] [--flight[=DIR]] [--log-level LEVEL]
//
//   --listen SPEC        unix:PATH (default unix:bfv_serve.sock) or
//                        tcp:HOST:PORT
//   --workers N          worker pool size (default 4)
//   --tenants FILE       tenant policy file, one
//                        name:weight[:max_running[:max_queued[:max_nodes
//                        [:max_seconds]]]] per line
//   --spool DIR          directory for eviction checkpoints (default .)
//   --checkpoint-every K snapshot cadence imposed on jobs for evictability
//                        (default 1; 0 = only jobs that opt in)
//   --no-warm            fresh manager per job (disable reset-not-destroy)
//   --no-stream          do not stream per-iteration updates
//   --report[=path]      write SVC_<name>.json at shutdown
//   --name TAG           server tag (default bfv_serve)
//   --metrics-every S    write METRICS_<name>.{prom,json} every S seconds
//                        (0 = never; a final snapshot lands at shutdown)
//   --metrics-dir DIR    where the metrics snapshots go (default .)
//   --flight[=DIR]       dump FLIGHT_<name>.json to DIR (default .) on job
//                        error, injected worker fault, and shutdown
//   --log-level LEVEL    stderr verbosity: error (default), info, debug
//
// Runs until a client sends Shutdown (bfv_client --shutdown). Exit 0 on a
// clean stop, 1 on a startup failure.
#include <cstdio>
#include <string>

#include "obs/log.hpp"
#include "svc/server.hpp"

using namespace bfvr;

namespace {

struct Args {
  svc::Server::Options opts;
  bool ok = true;
};

Args parseArgs(int argc, char** argv) {
  Args a;
  a.opts.endpoint = "unix:bfv_serve.sock";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        a.ok = false;
        return "";
      }
      return argv[++i];
    };
    try {
      if (arg == "--listen") {
        a.opts.endpoint = value("--listen");
      } else if (arg == "--workers") {
        a.opts.workers = static_cast<unsigned>(std::stoul(value("--workers")));
      } else if (arg == "--tenants") {
        a.opts.tenants = svc::parseTenantsFile(value("--tenants"));
      } else if (arg == "--spool") {
        a.opts.spool_dir = value("--spool");
      } else if (arg == "--checkpoint-every") {
        a.opts.checkpoint_every =
            static_cast<unsigned>(std::stoul(value("--checkpoint-every")));
      } else if (arg == "--no-warm") {
        a.opts.warm_managers = false;
      } else if (arg == "--no-stream") {
        a.opts.stream_iterations = false;
      } else if (arg == "--report") {
        a.opts.report_path = "<default>";
      } else if (arg.rfind("--report=", 0) == 0) {
        a.opts.report_path = arg.substr(9);
      } else if (arg == "--name") {
        a.opts.name = value("--name");
      } else if (arg == "--metrics-every") {
        a.opts.metrics_every = std::stod(value("--metrics-every"));
      } else if (arg == "--metrics-dir") {
        a.opts.metrics_dir = value("--metrics-dir");
      } else if (arg == "--flight") {
        a.opts.flight_dir = ".";
      } else if (arg.rfind("--flight=", 0) == 0) {
        a.opts.flight_dir = arg.substr(9);
      } else if (arg == "--log-level") {
        const std::string level = value("--log-level");
        obs::LogLevel parsed;
        if (!obs::parseLogLevel(level, &parsed)) {
          std::fprintf(stderr, "--log-level: expected error|info|debug, got %s\n",
                       level.c_str());
          a.ok = false;
        } else {
          obs::setLogLevel(parsed);
        }
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        a.ok = false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", arg.c_str(), e.what());
      a.ok = false;
    }
    if (!a.ok) break;
  }
  if (a.opts.report_path == "<default>") {
    a.opts.report_path = "SVC_" + a.opts.name + ".json";
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: %s [--listen unix:PATH|tcp:HOST:PORT] [--workers N] "
                 "[--tenants FILE] [--spool DIR] [--checkpoint-every K] "
                 "[--no-warm] [--no-stream] [--report[=path]] [--name TAG] "
                 "[--metrics-every S] [--metrics-dir DIR] [--flight[=DIR]] "
                 "[--log-level error|info|debug]\n",
                 argv[0]);
    return 1;
  }
  try {
    svc::Server server(args.opts);
    std::printf("%s listening on %s (%u workers, %zu tenants)\n",
                args.opts.name.c_str(), args.opts.endpoint.c_str(),
                args.opts.workers, args.opts.tenants.size());
    std::fflush(stdout);
    server.run();
    std::printf("%s stopped\n", args.opts.name.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfv_serve: %s\n", e.what());
    return 1;
  }
}
