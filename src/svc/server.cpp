#include "svc/server.hpp"

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "run/manifest.hpp"
#include "svc/protocol.hpp"
#include "util/json.hpp"

namespace bfvr::svc {

namespace {

/// Read a spool checkpoint file whole. Empty on any failure: an eviction
/// that raced ahead of the first snapshot simply restarts from scratch.
std::shared_ptr<const std::vector<std::uint8_t>> slurpSpool(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.empty()) return nullptr;
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

/// Per-tenant serving counter (admission decisions, outcomes, churn).
/// Registry lookup per call — these fire per job-lifecycle event, not per
/// frame or per BDD op, so the mutex there is noise.
obs::Counter& tenantCounter(const char* name, const std::string& tenant) {
  return obs::Registry::global().counter(name,
                                         obs::metricLabel("tenant", tenant));
}

obs::Histogram& dispatchHistogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "bfvr_svc_dispatch_seconds", "", obs::kSecondsScale);
  return h;
}
obs::Histogram& iterationHistogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "bfvr_svc_iteration_seconds", "", obs::kSecondsScale);
  return h;
}

std::string statusDetail(const std::string& status, unsigned worker) {
  return status + " worker=" + std::to_string(worker);
}

}  // namespace

Server::Server(const Options& opts)
    : opts_(opts),
      endpoint_(Endpoint::parse(opts.endpoint)),
      listener_(listenOn(endpoint_)),
      pool_(opts.workers, opts.warm_managers),
      queue_(opts.tenants),
      flight_(opts.flight_capacity) {
  for (const TenantConfig& t : opts.tenants) {
    obs::SvcTenantStats s;
    s.name = t.name;
    s.weight = t.weight;
    tenant_stats_.push_back(std::move(s));
  }
  if (!opts_.journal_dir.empty()) {
    journal_ =
        std::make_unique<Journal>(opts_.journal_dir, opts_.journal_fsync);
    replayJournal();
  }
}

Server::~Server() {
  requestShutdown(false);
  waitStopped();
}

void Server::start() {
  accept_thread_ = std::thread([this] { acceptLoop(); });
  if (opts_.metrics_every > 0.0) {
    metrics_thread_ = std::thread([this] { metricsLoop(); });
  }
  obs::logLine(obs::LogLevel::kInfo, "svc",
               "listening on " + endpoint_.describe() + " with " +
                   std::to_string(pool_.workers()) + " workers");
  // Jobs replayed from the journal are already queued; nothing else will
  // pump them until a client shows up, so dispatch them now.
  if (journal_ != nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    pump();
  }
}

void Server::requestShutdown(bool drain) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // A repeat request is a no-op, except the escalation a second SIGTERM
    // means: a drain in progress hardens into an immediate stop. After the
    // server already stopped there is nothing left to escalate.
    if (stopped_) return;
    if (shutdown_requested_ && (drain || !shutdown_drain_)) return;
    const bool escalated = shutdown_requested_;
    shutdown_requested_ = true;
    shutdown_drain_ = drain;
    draining_ = true;
    obs::logLine(obs::LogLevel::kInfo, "svc",
                 std::string(escalated ? "shutdown escalated ("
                                       : "shutdown requested (") +
                     (drain ? "drain" : "immediate") + ")");
    flight_.record(obs::FlightSeverity::kInfo, "shutdown",
                   escalated ? "drain escalated to immediate stop"
                             : (drain ? "drain requested"
                                      : "immediate stop requested"));
    if (!drain) {
      // Immediate: cancel every running job and drop the queue. Dropped
      // jobs' owners get no JobDone — their sessions are about to close.
      // With a journal the dropped work is not lost, only deferred: the
      // jobs stay non-terminal in the log and replay on the next start.
      for (auto& [id, r] : running_) r.cancel->cancel();
      for (QueuedJob& dropped : queue_.dropAll()) {
        if (journal_ == nullptr) statsFor(dropped.tenant).cancelled += 1;
      }
    } else {
      pump();  // capped tenants may have runnable work and idle workers
    }
  }
  cv_.notify_all();
}

void Server::waitStopped() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) return;
    cv_.wait(lock, [this] { return shutdown_requested_; });
    // Drain: wait until nothing is queued and no worker is busy.
    cv_.wait(lock, [this] {
      return outstanding_ == 0 && queue_.queuedCount() == 0;
    });
    if (!opts_.report_path.empty()) {
      const std::string json =
          buildReportLocked(StatsQuery::kIncludeMetrics |
                            StatsQuery::kIncludeSpans);
      std::ofstream out(opts_.report_path);
      if (out) {
        out << json << "\n";
        obs::logLine(obs::LogLevel::kInfo, "svc",
                     "wrote " + opts_.report_path);
      } else {
        obs::logLine(obs::LogLevel::kError, "svc",
                     "cannot write " + opts_.report_path);
      }
    }
    if (journal_ != nullptr) finishJournalLocked();
    stopped_ = true;
    // Wake the accept thread out of accept(2) and every session reader out
    // of recv(2).
    ::shutdown(listener_.get(), SHUT_RDWR);
    for (auto& [id, s] : sessions_) {
      s->alive.store(false, std::memory_order_relaxed);
      ::shutdown(s->fd.get(), SHUT_RDWR);
    }
  }
  cv_.notify_all();  // wake the metrics writer so it sees stopped_
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // The accept thread spawns session threads; with it joined the vector is
  // final.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) t.join();
  listener_.close();
  if (endpoint_.is_unix) std::remove(endpoint_.path.c_str());
  // Final observability snapshots, after all workers and writers are quiet.
  if (opts_.metrics_every > 0.0) writeMetricsFiles();
  flight_.record(obs::FlightSeverity::kInfo, "shutdown", "server stopped");
  dumpFlight("shutdown");
  obs::logLine(obs::LogLevel::kInfo, "svc", "stopped");
}

void Server::acceptLoop() {
  for (;;) {
    Fd conn = acceptOn(listener_);
    if (!conn.valid()) return;  // listener shut down: orderly exit
    auto s = std::make_shared<Session>();
    s->fd = std::move(conn);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      s->id = next_session_++;
      sessions_accepted_ += 1;
      sessions_[s->id] = s;
      session_threads_.emplace_back([this, s] { sessionLoop(s); });
    }
  }
}

void Server::sessionLoop(std::shared_ptr<Session> s) {
  // First frame must be Hello; everything else on this connection is a
  // protocol error reported back (best-effort) before closing.
  const RecvDeadlines deadlines{opts_.idle_timeout, opts_.frame_timeout};
  try {
    if (opts_.send_timeout > 0.0) setSendTimeout(s->fd, opts_.send_timeout);
    std::optional<Frame> first = recvFrame(s->fd, deadlines);
    if (!first.has_value()) throw Error("session: closed before hello");
    const Hello hello = Hello::decode(*first);
    if (hello.proto != kWireVersion) {
      throw Error("session: client protocol version " +
                  std::to_string(hello.proto) + " (server speaks " +
                  std::to_string(kWireVersion) + ")");
    }
    if (hello.tenant.empty()) throw Error("session: empty tenant name");
    s->tenant = hello.tenant;
    HelloAck ack;
    ack.session = s->id;
    ack.server = opts_.name;
    sendTo(s, ack.encode());
    obs::logLine(obs::LogLevel::kDebug, "svc",
                 "session " + std::to_string(s->id) + " opened", s->tenant);
    while (s->alive.load(std::memory_order_relaxed)) {
      std::optional<Frame> f = recvFrame(s->fd, deadlines);
      if (!f.has_value()) break;  // orderly close without Bye: fine
      if (!handleFrame(s, *f)) break;
    }
  } catch (const Timeout& e) {
    if (e.idle) {
      // The reaper's case: a connected-but-silent peer. Not a protocol
      // error — just reclaim the thread, telling the peer why if its pipe
      // still works.
      sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("bfvr_svc_sessions_reaped_total").inc();
      obs::logLine(obs::LogLevel::kInfo, "svc",
                   "session " + std::to_string(s->id) + " reaped: " + e.what(),
                   s->tenant);
      flight_.record(obs::FlightSeverity::kInfo, "reaper", e.what(),
                     s->tenant);
    } else {
      // A frame that started but never finished arriving: slow-loris or a
      // torn send. Protocol-error territory.
      frame_timeouts_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("bfvr_svc_frame_timeouts_total").inc();
      obs::Registry::global().counter("bfvr_svc_session_errors_total").inc();
      obs::logLine(obs::LogLevel::kError, "svc",
                   "session " + std::to_string(s->id) + ": " + e.what(),
                   s->tenant);
      flight_.record(obs::FlightSeverity::kError, "wire", e.what(),
                     s->tenant);
    }
    WireError err;
    err.message = e.what();
    sendTo(s, err.encode());
  } catch (const Error& e) {
    // Malformed traffic (bad magic/CRC/truncation) or version skew: tell
    // the client why, if the pipe still works, then drop the session. The
    // server itself never goes down with a session.
    obs::logLine(obs::LogLevel::kError, "svc",
                 "session " + std::to_string(s->id) + ": " + e.what(),
                 s->tenant);
    flight_.record(obs::FlightSeverity::kError, "wire", e.what(), s->tenant);
    obs::Registry::global().counter("bfvr_svc_session_errors_total").inc();
    WireError err;
    err.message = e.what();
    sendTo(s, err.encode());
  }
  // Session teardown. Without a journal: orphan its queued jobs and cancel
  // its running ones — results with no one to read them are wasted worker
  // time. With a journal the jobs are kept (detached from the dead
  // session): the client is expected to reconnect and resubmit with its
  // idempotency keys, and the work already done must not be thrown away.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s->alive.store(false, std::memory_order_relaxed);
    if (journal_ == nullptr) {
      for (QueuedJob& dropped : queue_.dropSession(s->id)) {
        statsFor(dropped.tenant).cancelled += 1;
      }
      for (auto& [id, r] : running_) {
        if (r.job.session == s->id) r.cancel->cancel();
      }
    }
    sessions_.erase(s->id);
    pump();  // dropping queued jobs may unblock a tenant's queue cap
  }
  obs::logLine(obs::LogLevel::kDebug, "svc",
               "session " + std::to_string(s->id) + " closed", s->tenant);
  cv_.notify_all();
}

bool Server::handleFrame(const std::shared_ptr<Session>& s, const Frame& f) {
  switch (f.type) {
    case FrameType::kSubmit:
      handleSubmit(s, f);
      return true;
    case FrameType::kCancel: {
      const Cancel c = Cancel::decode(f);
      const std::lock_guard<std::mutex> lock(mu_);
      if (auto it = running_.find(c.job); it != running_.end()) {
        it->second.cancel->cancel();
      } else if (std::optional<QueuedJob> dropped = queue_.dropJob(c.job);
                 dropped.has_value()) {
        statsFor(dropped->tenant).cancelled += 1;
        JobDone done;
        done.job = dropped->id;
        done.status = to_string(RunStatus::kCancelled);
        done.message = "cancelled while queued";
        done.evictions = dropped->evictions;
        if (journal_ != nullptr) {
          // An explicit client cancel is terminal: journal it so the job
          // does not rise from the dead on the next restart.
          JournalRecord rec;
          rec.event = JournalEvent::kDone;
          rec.job = dropped->id;
          rec.status = done.status;
          rec.message = done.message;
          journalAppend(rec);
          journal_live_.erase(dropped->id);
          done_cache_[dropped->id] = done;
        }
        sendTo(s, done.encode());
        pump();
      }
      return true;
    }
    case FrameType::kEvict: {
      const Evict e = Evict::decode(f);
      const std::lock_guard<std::mutex> lock(mu_);
      if (auto it = running_.find(e.job); it != running_.end()) {
        it->second.evict_requested->store(true, std::memory_order_relaxed);
        it->second.cancel->cancel();
      }
      return true;
    }
    case FrameType::kStats: {
      const StatsQuery q = StatsQuery::decode(f);
      StatsReply reply;
      reply.json = statsJson(q.flags);
      sendTo(s, reply.encode());
      return true;
    }
    case FrameType::kShutdown: {
      const Shutdown sd = Shutdown::decode(f);
      requestShutdown(sd.drain);
      return true;
    }
    case FrameType::kBye:
      return false;
    default:
      throw Error(std::string("session: unexpected ") + to_string(f.type) +
                  " frame");
  }
}

void Server::handleSubmit(const std::shared_ptr<Session>& s, const Frame& f) {
  const Submit sub = Submit::decode(f);
  Rejected rej;
  rej.tag = sub.tag;
  QueuedJob job;
  try {
    // One submission = one manifest line; portfolio entries are a batch
    // feature and not accepted over the wire.
    std::vector<run::ManifestEntry> entries =
        run::parseManifestString(sub.line);
    if (entries.size() != 1) {
      throw std::invalid_argument("expected exactly one job line");
    }
    if (!entries[0].portfolio.empty()) {
      throw std::invalid_argument("portfolio= is not accepted over the wire");
    }
    job.spec = std::move(entries[0].spec);
  } catch (const std::exception& e) {
    rej.reason = e.what();
    const std::lock_guard<std::mutex> lock(mu_);
    statsFor(s->tenant).submitted += 1;
    statsFor(s->tenant).rejected += 1;
    tenantCounter("bfvr_svc_submissions_total", s->tenant).inc();
    tenantCounter("bfvr_svc_rejected_total", s->tenant).inc();
    flight_.record(obs::FlightSeverity::kWarn, "admission",
                   "rejected: " + rej.reason, s->tenant);
    sendTo(s, rej.encode());
    return;
  }
  job.session = s->id;
  job.tenant = s->tenant;
  job.idem = sub.idem;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    obs::SvcTenantStats& ts = statsFor(s->tenant);
    ts.submitted += 1;
    tenantCounter("bfvr_svc_submissions_total", s->tenant).inc();
    // Idempotent resubmission: a key the journal already knows answers
    // with the original job's identity — and its terminal result when it
    // already finished — instead of executing a second time. A live job
    // is reattached to this session so its remaining frames land here.
    if (journal_ != nullptr && !sub.idem.empty()) {
      if (auto it = idem_to_job_.find(sub.idem); it != idem_to_job_.end()) {
        const std::uint64_t id = it->second;
        dedup_hits_ += 1;
        tenantCounter("bfvr_svc_dedup_hits_total", s->tenant).inc();
        flight_.record(obs::FlightSeverity::kInfo, "dedup",
                       "idem '" + sub.idem + "' matched job " +
                           std::to_string(id),
                       s->tenant, id);
        if (auto rit = running_.find(id); rit != running_.end()) {
          rit->second.job.session = s->id;
        } else {
          queue_.reattachSession(id, s->id);
        }
        Accepted acc;
        acc.tag = sub.tag;
        acc.job = id;
        if (auto sit = spans_.find(id); sit != spans_.end()) {
          acc.trace = sit->second.trace_id;
        }
        sendTo(s, acc.encode());
        if (auto dit = done_cache_.find(id); dit != done_cache_.end()) {
          sendTo(s, dit->second.encode());
        }
        return;
      }
    }
    if (draining_) {
      ts.rejected += 1;
      tenantCounter("bfvr_svc_rejected_total", s->tenant).inc();
      rej.reason = "server is draining";
      flight_.record(obs::FlightSeverity::kWarn, "admission",
                     "rejected: " + rej.reason, s->tenant);
      sendTo(s, rej.encode());
      return;
    }
    job.id = next_job_++;
    // Make the job evictable: wire up the spool checkpoint unless the
    // submission already checkpoints somewhere of its own.
    if (job.spec.opts.checkpoint_path.empty() && opts_.checkpoint_every > 0) {
      job.spec.opts.checkpoint_every = opts_.checkpoint_every;
      job.spec.opts.checkpoint_path = spoolPathFor(job.id);
    }
    const std::uint64_t id = job.id;
    const std::string display = job.spec.displayName();
    if (std::optional<std::string> reason = queue_.admit(std::move(job));
        reason.has_value()) {
      ts.rejected += 1;
      tenantCounter("bfvr_svc_rejected_total", s->tenant).inc();
      rej.reason = *reason;
      flight_.record(obs::FlightSeverity::kWarn, "admission",
                     "rejected: " + rej.reason, s->tenant);
      sendTo(s, rej.encode());
      return;
    }
    // Write-ahead: the accept must be durable before the client hears it,
    // or a crash between the two could lose a job the client believes is
    // in flight. A journal that cannot take the record refuses the job.
    if (journal_ != nullptr) {
      JournalRecord rec;
      rec.event = JournalEvent::kAccepted;
      rec.job = id;
      rec.tenant = s->tenant;
      rec.idem = sub.idem;
      rec.line = sub.line;
      if (!journalAppend(rec)) {
        queue_.dropJob(id);
        ts.rejected += 1;
        tenantCounter("bfvr_svc_rejected_total", s->tenant).inc();
        rej.reason = "journal write failed";
        flight_.record(obs::FlightSeverity::kError, "journal",
                       "rejected submit: journal write failed", s->tenant);
        sendTo(s, rej.encode());
        return;
      }
      journal_live_[id] = rec;
      if (!sub.idem.empty()) idem_to_job_[sub.idem] = id;
    }
    // The job exists: open its span. The received/admitted/queued stamps
    // land together — one frame handler performed all three transitions.
    obs::JobSpan& span = spans_[id];
    span.trace_id = next_trace_++;
    span.job = id;
    span.tenant = s->tenant;
    span.idem = sub.idem;
    span.start = uptime_.seconds();
    span_counts_[s->tenant] += 1;
    spanEventLocked(id, "received", display);
    spanEventLocked(id, "admitted");
    spanEventLocked(id, "queued");
    tenantCounter("bfvr_svc_admitted_total", s->tenant).inc();
    flight_.record(obs::FlightSeverity::kInfo, "admission",
                   "admitted " + display, s->tenant, id);
    obs::logLine(obs::LogLevel::kDebug, "svc", "admitted " + display,
                 s->tenant, id);
    Accepted acc;
    acc.tag = sub.tag;
    acc.job = id;
    acc.trace = span.trace_id;
    sendTo(s, acc.encode());
    pump();
  }
}

void Server::pump() {
  while (outstanding_ < pool_.workers()) {
    std::optional<QueuedJob> picked = queue_.pick();
    if (!picked.has_value()) return;
    const std::uint64_t id = picked->id;
    Running r;
    r.job = std::move(*picked);
    r.cancel = std::make_shared<run::CancelToken>();
    r.evict_requested = std::make_shared<std::atomic<bool>>(false);
    run::JobSpec spec = r.job.spec;  // the Running keeps the pristine copy
    const unsigned avoid = r.job.avoid_worker;
    const bool resumed = spec.resume_image != nullptr;
    // Stream iteration records to the owning session, and — with a
    // journal — append a checkpoint watermark at the job's snapshot
    // cadence. The hook runs on the worker thread; it takes only the
    // session write mutex (inner to mu_), and swallows everything — a
    // dead client must not disturb the engine. The hook fires *before*
    // the engine writes the post-iteration snapshot, so a journaled
    // watermark means "progress reached", not "snapshot durable": replay
    // always trusts the spool file itself (atomic tmp+rename, so it is
    // complete whenever it exists), never the watermark.
    const bool stream = opts_.stream_iterations;
    const bool watermark = journal_ != nullptr &&
                           !spec.opts.checkpoint_path.empty() &&
                           spec.opts.checkpoint_every > 0;
    if (stream || watermark) {
      const std::uint64_t session_id = r.job.session;
      const unsigned ckpt_every = spec.opts.checkpoint_every;
      // `last_mark` carries the previous iteration's timestamp across hook
      // invocations (one lambda per dispatch, called sequentially on the
      // worker thread), so each observation is one iteration's wall-clock.
      auto last_mark = std::make_shared<double>(uptime_.seconds());
      spec.opts.on_iteration = [this, id, session_id, last_mark, stream,
                                watermark,
                                ckpt_every](const obs::IterationRecord& it) {
        const double now_s = uptime_.seconds();
        iterationHistogram().observeSeconds(now_s - *last_mark);
        *last_mark = now_s;
        if (watermark && it.iteration % ckpt_every == 0) {
          JournalRecord rec;
          rec.event = JournalEvent::kCheckpointed;
          rec.job = id;
          rec.iteration = it.iteration;
          journalAppend(rec);
        }
        // Worker thread: take mu_ only to look the session up (lock order
        // mu_ -> write_mu, same as everywhere else), send outside it.
        std::shared_ptr<Session> owner;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          owner = sessionById(session_id);
          // Fold the live iteration count into the span's running stamp
          // instead of appending one event per iteration — timelines stay
          // bounded however long the fixpoint runs.
          if (auto sit = spans_.find(id); sit != spans_.end()) {
            obs::JobSpan& span = sit->second;
            if (!span.events.empty() && span.events.back().what == "running") {
              span.events.back().t = now_s - span.start;
              span.events.back().detail =
                  "iter=" + std::to_string(it.iteration);
            } else {
              spanEventLocked(id, "running",
                              "iter=" + std::to_string(it.iteration));
            }
          }
        }
        if (!stream || owner == nullptr) return;
        IterationUpdate u;
        u.job = id;
        u.iteration = it.iteration;
        u.frontier_nodes = it.frontier_nodes;
        u.live_nodes = it.live_nodes;
        u.peak_nodes = it.peak_nodes;
        u.frontier_states = it.frontier_states;
        sendTo(owner, u.encode());
      };
    }
    if (journal_ != nullptr) {
      JournalRecord rec;
      rec.event = JournalEvent::kDispatched;
      rec.job = id;
      journalAppend(rec);
    }
    const std::uint64_t session_id = r.job.session;
    outstanding_ += 1;
    dispatches_ += 1;
    if (auto sit = spans_.find(id); sit != spans_.end()) {
      // Scheduling latency: span open (admission) to this dispatch. A
      // resumed job measures its requeue wait, which is the point.
      const obs::JobSpan& span = sit->second;
      double queued_at = span.start;
      for (const obs::SpanEvent& ev : span.events) {
        if (ev.what == "queued") queued_at = span.start + ev.t;
      }
      dispatchHistogram().observeSeconds(uptime_.seconds() - queued_at);
      spanEventLocked(id, resumed ? "resumed" : "dispatched",
                      resumed ? "from eviction image" : "");
    }
    if (resumed) {
      flight_.record(obs::FlightSeverity::kInfo, "resume",
                     "resumed from eviction image", r.job.tenant, id);
    }
    obs::logLine(obs::LogLevel::kDebug, "svc",
                 resumed ? "resumed" : "dispatched", r.job.tenant, id);
    auto cancel = r.cancel;
    running_[id] = std::move(r);
    pool_.submit(
        std::move(spec), cancel,
        [this, id](const run::JobResult& res) { onJobDone(id, res); }, avoid);
    if (std::shared_ptr<Session> owner = sessionById(session_id);
        owner != nullptr) {
      JobStarted started;
      started.job = id;
      started.resumed = resumed;
      sendTo(owner, started.encode());
    }
  }
}

void Server::onJobDone(std::uint64_t id, const run::JobResult& r) {
  // Runs on the worker thread, right before the job's future is fulfilled.
  std::shared_ptr<Session> owner;
  Frame out;
  // Flight dump triggers, resolved under mu_ and acted on after it: a
  // failed job or an injected worker fault is post-mortem material.
  std::string dump_reason;
  std::uint64_t faults_injected = 0;
  for (const run::AttemptRecord& a : r.attempts) {
    faults_injected += a.faults_injected;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = running_.find(id);
    if (it == running_.end()) return;  // cannot happen; defensive
    Running rec = std::move(it->second);
    running_.erase(it);
    queue_.release(rec.job.tenant);
    outstanding_ -= 1;
    owner = sessionById(rec.job.session);
    if (faults_injected != 0) {
      flight_.record(obs::FlightSeverity::kError, "fault",
                     "worker " + std::to_string(r.worker) + " injected " +
                         std::to_string(faults_injected) + " fault(s)",
                     rec.job.tenant, id);
      dump_reason = "worker-fault";
    }
    if (r.retriesUsed() > 0) {
      flight_.record(obs::FlightSeverity::kWarn, "retry",
                     std::to_string(r.retriesUsed()) + " retry attempt(s), " +
                         "final status " + to_string(r.status),
                     rec.job.tenant, id);
    }
    const bool evicting =
        rec.evict_requested->load(std::memory_order_relaxed) &&
        r.status == RunStatus::kCancelled && !draining_;
    // A running job cancelled by an *immediate shutdown* under a journal
    // is not terminal — it stays non-terminal in the log (with its spool
    // snapshot intact) and replays on the next start. Only explicit
    // client cancels and real completions retire a journaled job.
    const bool preserved = !evicting && journal_ != nullptr &&
                           shutdown_requested_ && !shutdown_drain_ &&
                           r.status == RunStatus::kCancelled;
    if (preserved) {
      spanEventLocked(id, "preserved",
                      "immediate shutdown at iter=" +
                          std::to_string(r.reach.iterations) +
                          "; will replay");
      flight_.record(obs::FlightSeverity::kInfo, "journal",
                     "job preserved for restart replay (iteration " +
                         std::to_string(r.reach.iterations) + ")",
                     rec.job.tenant, id);
      obs::logLine(obs::LogLevel::kInfo, "svc",
                   "preserved for restart replay", rec.job.tenant, id);
    } else if (evicting) {
      // Lift the latest spool snapshot into memory and requeue at the
      // front, steered away from the worker that ran the job. No snapshot
      // yet (evicted before the first checkpoint) still migrates — the
      // resume just starts from scratch.
      QueuedJob again = std::move(rec.job);
      again.spec.resume_image = slurpSpool(again.spec.opts.checkpoint_path);
      again.avoid_worker = r.worker;
      again.evictions += 1;
      statsFor(again.tenant).evictions += 1;
      tenantCounter("bfvr_svc_evictions_total", again.tenant).inc();
      if (again.spec.resume_image != nullptr) {
        statsFor(again.tenant).resumes += 1;
        tenantCounter("bfvr_svc_resumes_total", again.tenant).inc();
      }
      if (auto sit = spans_.find(id); sit != spans_.end()) {
        sit->second.evictions = again.evictions;
        sit->second.workers.push_back(r.worker);
      }
      spanEventLocked(id, "evicted",
                      "iter=" + std::to_string(r.reach.iterations) +
                          " worker=" + std::to_string(r.worker));
      spanEventLocked(id, "queued", "requeued after eviction");
      flight_.record(obs::FlightSeverity::kWarn, "eviction",
                     "evicted at iteration " +
                         std::to_string(r.reach.iterations) + " from worker " +
                         std::to_string(r.worker) +
                         (again.spec.resume_image != nullptr
                              ? ", snapshot captured"
                              : ", no snapshot yet"),
                     again.tenant, id);
      obs::logLine(obs::LogLevel::kInfo, "svc",
                   "evicted from worker " + std::to_string(r.worker),
                   again.tenant, id);
      JobEvicted ev;
      ev.job = id;
      ev.iteration = r.reach.iterations;
      ev.worker = r.worker;
      out = ev.encode();
      queue_.requeueFront(std::move(again));
    } else {
      obs::SvcTenantStats& ts = statsFor(rec.job.tenant);
      switch (r.status) {
        case RunStatus::kDone:
          ts.done += 1;
          break;
        case RunStatus::kTimeOut:
          ts.timeout += 1;
          break;
        case RunStatus::kMemOut:
          ts.memout += 1;
          break;
        case RunStatus::kCancelled:
          ts.cancelled += 1;
          break;
        case RunStatus::kError:
          ts.error += 1;
          break;
        case RunStatus::kInconclusive:
          ts.inconclusive += 1;
          break;
      }
      ts.queue_seconds += r.queue_seconds;
      ts.exec_seconds += r.seconds;
      const std::string status = to_string(r.status);
      tenantCounter("bfvr_svc_jobs_finished_total", rec.job.tenant).inc();
      finishSpanLocked(id, status, r.worker, rec.job.evictions);
      if (r.status == RunStatus::kError) {
        flight_.record(obs::FlightSeverity::kError, "job",
                       "failed: " + r.message, rec.job.tenant, id);
        if (dump_reason.empty()) dump_reason = "job-error";
      }
      obs::logLine(obs::LogLevel::kDebug, "svc",
                   status + " on worker " + std::to_string(r.worker),
                   rec.job.tenant, id);
      // The job is finished for good: its spool snapshot is garbage now.
      if (!rec.job.spec.opts.checkpoint_path.empty() &&
          rec.job.spec.opts.checkpoint_path.rfind(opts_.spool_dir, 0) == 0) {
        std::remove(rec.job.spec.opts.checkpoint_path.c_str());
      }
      JobDone done;
      done.job = id;
      done.status = to_string(r.status);
      done.message = r.message;
      done.seconds = r.seconds;
      done.queue_seconds = r.queue_seconds;
      done.worker = r.worker;
      done.iterations = r.reach.iterations;
      done.states = r.reach.states;
      done.peak_live_nodes = r.reach.peak_live_nodes;
      done.attempts = static_cast<std::uint32_t>(r.attempts.size());
      done.evictions = rec.job.evictions;
      done.resumed = rec.job.spec.resume_image != nullptr ||
                     (!r.attempts.empty() && r.attempts.back().resumed);
      if (journal_ != nullptr) {
        // Write-ahead again: the terminal record must be durable before
        // the client hears JobDone, so a crash right after the send
        // cannot re-run a job the client saw finish.
        JournalRecord jrec;
        jrec.event = JournalEvent::kDone;
        jrec.job = id;
        jrec.iteration = r.reach.iterations;
        jrec.status = done.status;
        jrec.message = done.message;
        jrec.states = done.states;
        jrec.seconds = done.seconds;
        journalAppend(jrec);
        journal_live_.erase(id);
        done_cache_[id] = done;
      }
      out = done.encode();
    }
    if (!preserved && owner != nullptr) sendTo(owner, out);
    pump();
  }
  if (!dump_reason.empty()) dumpFlight(dump_reason);
  cv_.notify_all();
}

void Server::sendTo(const std::shared_ptr<Session>& s, const Frame& f) {
  const std::lock_guard<std::mutex> lock(s->write_mu);
  if (!s->alive.load(std::memory_order_relaxed)) return;
  try {
    sendFrame(s->fd, f);
  } catch (const Error&) {
    // Peer is gone; its reader thread will notice and tear the session
    // down. Until then, drop further frames silently.
    s->alive.store(false, std::memory_order_relaxed);
  }
}

std::shared_ptr<Server::Session> Server::sessionById(std::uint64_t id) {
  // Callers either hold mu_ already or race benignly with teardown (the
  // shared_ptr keeps the session alive; `alive` gates actual sends).
  auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second : nullptr;
}

obs::SvcTenantStats& Server::statsFor(const std::string& tenant) {
  for (obs::SvcTenantStats& t : tenant_stats_) {
    if (t.name == tenant) return t;
  }
  obs::SvcTenantStats s;
  s.name = tenant;
  if (const TenantConfig* cfg = queue_.tenantConfig(tenant)) {
    s.weight = cfg->weight;
  }
  tenant_stats_.push_back(std::move(s));
  return tenant_stats_.back();
}

std::string Server::spoolPathFor(std::uint64_t job_id) const {
  return opts_.spool_dir + "/svc_job_" + std::to_string(job_id) + ".ckpt";
}

void Server::replayJournal() {
  // Constructor context: no sessions, no workers running, mu_ not needed.
  // Fold the log into per-job state — last transition wins.
  struct State {
    const JournalRecord* accepted = nullptr;
    const JournalRecord* done = nullptr;
    std::uint64_t last_checkpoint = 0;
  };
  std::map<std::uint64_t, State> by_job;
  for (const JournalRecord& rec : journal_->replayed()) {
    State& st = by_job[rec.job];
    switch (rec.event) {
      case JournalEvent::kAccepted:
        st.accepted = &rec;
        break;
      case JournalEvent::kDispatched:
        break;
      case JournalEvent::kCheckpointed:
        st.last_checkpoint = rec.iteration;
        break;
      case JournalEvent::kDone:
        st.done = &rec;
        break;
    }
    if (rec.job >= next_job_) next_job_ = rec.job + 1;
  }
  obs::Counter& replayed_ctr =
      obs::Registry::global().counter("bfvr_svc_journal_replayed_jobs_total");
  for (const auto& [id, st] : by_job) {
    if (st.accepted == nullptr) continue;  // compacted remnant; nothing to do
    if (st.done != nullptr) {
      // Terminal: remember the result so a duplicate submission after the
      // crash gets the original answer instead of a re-execution.
      replayed_terminal_ += 1;
      JobDone done;
      done.job = id;
      done.status = st.done->status;
      done.message = st.done->message;
      done.iterations = st.done->iteration;
      done.states = st.done->states;
      done.seconds = st.done->seconds;
      done_cache_[id] = std::move(done);
      if (!st.accepted->idem.empty()) idem_to_job_[st.accepted->idem] = id;
      continue;
    }
    // Non-terminal: rebuild the job from its journaled manifest line and
    // re-enqueue, resuming from the spool snapshot when one exists (the
    // snapshot is trustworthy whenever present: io::save is atomic).
    QueuedJob job;
    job.id = id;
    job.session = 0;  // detached until a client reattaches via idem
    job.tenant = st.accepted->tenant;
    job.idem = st.accepted->idem;
    std::string fail;
    try {
      std::vector<run::ManifestEntry> entries =
          run::parseManifestString(st.accepted->line);
      if (entries.size() != 1 || !entries[0].portfolio.empty()) {
        throw std::invalid_argument("journaled line is not one plain job");
      }
      job.spec = std::move(entries[0].spec);
    } catch (const std::exception& e) {
      fail = e.what();
    }
    if (fail.empty()) {
      if (job.spec.opts.checkpoint_path.empty() &&
          opts_.checkpoint_every > 0) {
        job.spec.opts.checkpoint_every = opts_.checkpoint_every;
        job.spec.opts.checkpoint_path = spoolPathFor(id);
      }
      if (!job.spec.opts.checkpoint_path.empty()) {
        job.spec.resume_image = slurpSpool(job.spec.opts.checkpoint_path);
      }
      if (std::optional<std::string> reason = queue_.admit(job);
          reason.has_value()) {
        fail = *reason;
      }
    }
    if (!fail.empty()) {
      // Cannot be re-run (manifest no longer parses, tenant caps shrank,
      // ...): retire it in the journal so it stops replaying forever.
      obs::logLine(obs::LogLevel::kError, "svc",
                   "journal replay failed for job " + std::to_string(id) +
                       ": " + fail,
                   job.tenant, id);
      JournalRecord rec;
      rec.event = JournalEvent::kDone;
      rec.job = id;
      rec.status = to_string(RunStatus::kError);
      rec.message = "replay failed: " + fail;
      journalAppend(rec);
      continue;
    }
    const bool resumed = job.spec.resume_image != nullptr;
    replayed_jobs_ += 1;
    replayed_ctr.inc();
    if (resumed) {
      replayed_resumed_ += 1;
      statsFor(job.tenant).resumes += 1;
      tenantCounter("bfvr_svc_resumes_total", job.tenant).inc();
    }
    journal_live_[id] = *st.accepted;
    if (!job.idem.empty()) idem_to_job_[job.idem] = id;
    obs::JobSpan& span = spans_[id];
    span.trace_id = next_trace_++;
    span.job = id;
    span.tenant = job.tenant;
    span.idem = job.idem;
    span.start = uptime_.seconds();
    span_counts_[job.tenant] += 1;
    spanEventLocked(id, "replayed",
                    resumed ? "resume from spool snapshot (watermark iter=" +
                                  std::to_string(st.last_checkpoint) + ")"
                            : "no snapshot; fresh start");
    spanEventLocked(id, "queued");
    flight_.record(obs::FlightSeverity::kInfo, "journal",
                   resumed ? "replayed; resuming from spool snapshot"
                           : "replayed; no snapshot, restarting",
                   job.tenant, id);
    obs::logLine(obs::LogLevel::kInfo, "svc",
                 std::string("replayed from journal (") +
                     (resumed ? "resume" : "fresh") + ")",
                 job.tenant, id);
  }
  const JournalStats js = journal_->stats();
  if (js.torn_bytes > 0) {
    flight_.record(obs::FlightSeverity::kWarn, "journal",
                   "truncated torn tail: " + std::to_string(js.torn_bytes) +
                       " byte(s)");
  }
  obs::logLine(obs::LogLevel::kInfo, "svc",
               "journal replay: " + std::to_string(js.replayed_records) +
                   " record(s), " + std::to_string(replayed_jobs_) +
                   " job(s) re-enqueued (" +
                   std::to_string(replayed_resumed_) + " resuming), " +
                   std::to_string(replayed_terminal_) +
                   " already terminal, torn tail " +
                   std::to_string(js.torn_bytes) + " byte(s)");
}

bool Server::journalAppend(const JournalRecord& rec) noexcept {
  try {
    journal_->append(rec);
    return true;
  } catch (const std::exception& e) {
    journal_errors_ += 1;
    obs::Registry::global().counter("bfvr_svc_journal_errors_total").inc();
    obs::logLine(obs::LogLevel::kError, "svc",
                 std::string("journal append failed: ") + e.what());
    return false;
  }
}

void Server::finishJournalLocked() {
  if (opts_.journal_compact_on_shutdown) {
    std::vector<JournalRecord> keep;
    keep.reserve(journal_live_.size());
    for (const auto& [id, rec] : journal_live_) keep.push_back(rec);
    try {
      journal_->compact(keep);
      obs::logLine(obs::LogLevel::kInfo, "svc",
                   "journal compacted to " + std::to_string(keep.size()) +
                       " live job(s)");
    } catch (const std::exception& e) {
      obs::logLine(obs::LogLevel::kError, "svc",
                   std::string("journal compaction failed: ") + e.what());
    }
  }
  const JournalStats js = journal_->stats();
  util::JsonObject o;
  o.add("name", opts_.name)
      .add("path", journal_->path())
      .add("fsync", to_string(journal_->policy()))
      .add("appended", js.appended)
      .add("fsyncs", js.fsyncs)
      .add("replayed_records", js.replayed_records)
      .add("replayed_jobs", replayed_jobs_)
      .add("replayed_resumed", replayed_resumed_)
      .add("replayed_terminal", replayed_terminal_)
      .add("dedup_hits", dedup_hits_)
      .add("journal_errors", journal_errors_)
      .add("torn_bytes", js.torn_bytes)
      .add("compactions", js.compactions)
      .add("live_at_shutdown",
           static_cast<std::uint64_t>(journal_live_.size()));
  const std::string path =
      opts_.journal_dir + "/JOURNAL_" + opts_.name + ".json";
  std::ofstream out(path);
  if (out) {
    out << o.str() << "\n";
    obs::logLine(obs::LogLevel::kInfo, "svc", "wrote " + path);
  } else {
    obs::logLine(obs::LogLevel::kError, "svc", "cannot write " + path);
  }
}

std::uint64_t Server::replayedJobs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return replayed_jobs_;
}

std::uint64_t Server::dedupHits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dedup_hits_;
}

std::uint64_t Server::sessionsReaped() const {
  return sessions_reaped_.load(std::memory_order_relaxed);
}

std::uint64_t Server::frameTimeouts() const {
  return frame_timeouts_.load(std::memory_order_relaxed);
}

void Server::spanEventLocked(std::uint64_t id, const char* what,
                             std::string detail) {
  auto it = spans_.find(id);
  if (it == spans_.end()) return;
  obs::SpanEvent ev;
  ev.what = what;
  ev.t = uptime_.seconds() - it->second.start;
  ev.detail = std::move(detail);
  it->second.events.push_back(std::move(ev));
}

void Server::finishSpanLocked(std::uint64_t id, const std::string& status,
                              unsigned worker, unsigned evictions) {
  auto it = spans_.find(id);
  if (it == spans_.end()) return;
  obs::JobSpan& span = it->second;
  span.status = status;
  span.evictions = evictions;
  span.workers.push_back(worker);
  spanEventLocked(id, "done", statusDetail(status, worker));
  finished_spans_.push_back(id);
  while (finished_spans_.size() > opts_.span_retain) {
    spans_.erase(finished_spans_.front());
    finished_spans_.pop_front();
  }
}

void Server::sampleGaugesLocked() const {
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("bfvr_svc_queue_depth").set(
      static_cast<std::int64_t>(queue_.queuedCount()));
  reg.gauge("bfvr_svc_running").set(static_cast<std::int64_t>(running_.size()));
  reg.gauge("bfvr_svc_sessions").set(
      static_cast<std::int64_t>(sessions_.size()));
  const run::ManagerCache::Stats warm = pool_.warmStats();
  reg.gauge("bfvr_svc_warm_hits").set(static_cast<std::int64_t>(warm.hits));
  reg.gauge("bfvr_svc_warm_misses").set(
      static_cast<std::int64_t>(warm.misses));
  reg.gauge("bfvr_svc_leaked_nodes").set(
      static_cast<std::int64_t>(warm.leaked_nodes));
  // Integer-friendly hit rate: parts per million of acquires served warm.
  const std::uint64_t acquires = warm.hits + warm.misses;
  reg.gauge("bfvr_svc_warm_hit_rate_ppm")
      .set(acquires == 0 ? 0
                         : static_cast<std::int64_t>(warm.hits * 1000000 /
                                                     acquires));
  if (journal_ != nullptr) {
    const JournalStats js = journal_->stats();
    reg.gauge("bfvr_journal_appended")
        .set(static_cast<std::int64_t>(js.appended));
    reg.gauge("bfvr_journal_fsyncs")
        .set(static_cast<std::int64_t>(js.fsyncs));
    reg.gauge("bfvr_journal_torn_bytes")
        .set(static_cast<std::int64_t>(js.torn_bytes));
    reg.gauge("bfvr_journal_live_jobs")
        .set(static_cast<std::int64_t>(journal_live_.size()));
  }
}

std::string Server::buildReportLocked(std::uint32_t flags) const {
  sampleGaugesLocked();
  const run::ManagerCache::Stats warm = pool_.warmStats();
  obs::SvcServerStats server;
  server.name = opts_.name;
  server.endpoint = endpoint_.describe();
  server.workers = pool_.workers();
  server.seconds = uptime_.seconds();
  server.sessions = sessions_accepted_;
  server.dispatches = dispatches_;
  server.warm_hits = warm.hits;
  server.warm_misses = warm.misses;
  server.resets_failed = warm.resets_failed;
  server.leaked_nodes = warm.leaked_nodes;
  obs::SvcReportExtras extras;
  extras.queue_depth = queue_.queuedCount();
  extras.running = running_.size();
  std::vector<obs::JobSpan> spans;
  if ((flags & StatsQuery::kIncludeSpans) != 0) {
    spans.reserve(spans_.size());
    for (const auto& [id, span] : spans_) spans.push_back(span);
    extras.spans = spans;
  }
  if ((flags & StatsQuery::kIncludeMetrics) != 0) {
    extras.metrics_json = obs::Registry::global().json();
  }
  if ((flags & StatsQuery::kIncludeFlight) != 0) {
    extras.flight_json = flight_.json("stats-query");
  }
  return obs::svcReportJson(server, tenant_stats_, extras);
}

std::string Server::statsJson() const {
  return statsJson(StatsQuery::kIncludeMetrics | StatsQuery::kIncludeSpans);
}

std::string Server::statsJson(std::uint32_t flags) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buildReportLocked(flags);
}

std::vector<std::string> Server::dispatchLog() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.dispatchLog();
}

std::vector<obs::JobSpan> Server::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<obs::JobSpan> out;
  out.reserve(spans_.size());
  for (const auto& [id, span] : spans_) out.push_back(span);
  return out;
}

std::uint64_t Server::spanCount(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = span_counts_.find(tenant);
  return it != span_counts_.end() ? it->second : 0;
}

void Server::metricsLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock,
                 std::chrono::duration<double>(opts_.metrics_every),
                 [this] { return stopped_; });
    if (stopped_) return;  // waitStopped writes the final snapshot
    sampleGaugesLocked();
    lock.unlock();  // exposition takes only the registry's own lock
    writeMetricsFiles();
    lock.lock();
  }
}

void Server::writeMetricsFiles() const {
  const std::string base = opts_.metrics_dir + "/METRICS_" + opts_.name;
  {
    std::ofstream out(base + ".prom");
    if (out) {
      out << obs::Registry::global().text();
    } else {
      obs::logLine(obs::LogLevel::kError, "svc",
                   "cannot write " + base + ".prom");
    }
  }
  std::ofstream out(base + ".json");
  if (out) {
    out << obs::Registry::global().json();
  } else {
    obs::logLine(obs::LogLevel::kError, "svc",
                 "cannot write " + base + ".json");
  }
}

void Server::dumpFlight(const std::string& reason) const {
  if (opts_.flight_dir.empty()) return;
  const std::string path =
      opts_.flight_dir + "/FLIGHT_" + opts_.name + ".json";
  if (flight_.dump(path, reason)) {
    obs::logLine(obs::LogLevel::kInfo, "svc",
                 "flight recorder dumped to " + path + " (" + reason + ")");
  } else {
    obs::logLine(obs::LogLevel::kError, "svc", "cannot write " + path);
  }
}

}  // namespace bfvr::svc
