// Structured stderr logging for the serving tier: timestamped,
// component/tenant/job-tagged one-liners behind a global level gate.
// Default level is kError, so tests and library users stay quiet; the
// daemons raise it from --log-level.
//
//   [2026-08-08T12:00:01.234Z] info  svc tenant=alpha job=17 dispatched worker=2
//
// The level check is one relaxed atomic load, so disabled log sites cost
// nothing measurable; formatting happens only when the line will be
// emitted, and the final write is a single fputs (atomic enough for
// line-oriented stderr across threads).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace bfvr::obs {

enum class LogLevel : int { kError = 0, kInfo = 1, kDebug = 2 };

/// Parses "error" / "info" / "debug"; returns false on anything else.
bool parseLogLevel(const std::string& s, LogLevel* out);
const char* to_string(LogLevel level);

/// Process-wide log gate.
LogLevel logLevel() noexcept;
void setLogLevel(LogLevel level) noexcept;
inline bool logEnabled(LogLevel level) noexcept { return level <= logLevel(); }

/// Emit one line to stderr (appends '\n'). `component` is a short tag
/// ("svc", "serve", "client"); tenant/job are appended as `tenant=` /
/// `job=` fields when non-empty / non-zero. Call sites should gate with
/// logEnabled() when building the message is itself costly.
void logLine(LogLevel level, const std::string& component,
             const std::string& message, const std::string& tenant = "",
             std::uint64_t job = 0);

}  // namespace bfvr::obs
