
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_flows.cpp" "bench/CMakeFiles/bench_flows.dir/bench_flows.cpp.o" "gcc" "bench/CMakeFiles/bench_flows.dir/bench_flows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfvr_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_cdec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_bfv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bfvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
