// The §3 ordering story on a real circuit: a twin shift register whose
// reachable set is exactly chi = AND_i (a_i == b_i). Under orders that
// separate the two banks the characteristic function explodes; the
// canonical functional vector stays linear under every order because the
// b-bank components are just functional dependencies on the a-bank.
//
//   ./examples/ordering_robustness [bits]
#include <cstdio>
#include <cstdlib>

#include "circuit/generators.hpp"
#include "reach/engine.hpp"

using namespace bfvr;

namespace {

void runOrder(const circuit::Netlist& n, const std::string& label,
              const std::vector<circuit::ObjRef>& order) {
  bdd::Manager m(0);
  sym::StateSpace s(m, n, order);
  const reach::ReachResult r = reach::reachBfv(s, {});
  std::printf("%-12s %10.4f s   chi nodes %8zu   BFV shared %6zu\n",
              label.c_str(), r.seconds, r.chi_nodes, r.bfv_nodes);
}

/// The characteristic-function flow from the same order, with or without
/// dynamic reordering.
void runTrOrder(const circuit::Netlist& n, const std::string& label,
                const std::vector<circuit::ObjRef>& order,
                const bdd::Manager::Config& cfg) {
  bdd::Manager m(0, cfg);
  sym::StateSpace s(m, n, order);
  const reach::ReachResult r = reach::reachTr(s, {});
  std::printf(
      "%-22s %10.4f s   peak nodes %8zu   sift runs %llu (saved %llu)\n",
      label.c_str(), r.seconds, r.peak_live_nodes,
      static_cast<unsigned long long>(r.ops.reorder_runs),
      static_cast<unsigned long long>(r.ops.reorder_nodes_saved));
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned bits =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const circuit::Netlist n = circuit::makeTwinShift(bits);
  std::printf("twin shift register, %u+%u latches; reachable set is\n"
              "chi = AND_i (a_i == b_i), %.0f states\n\n",
              bits, bits, static_cast<double>(std::uint64_t{1} << bits));

  // Bank-separated order (all a's, then all b's): adversarial for chi.
  runOrder(n, "separated",
           circuit::makeOrder(n, {circuit::OrderKind::kNatural, 0}));

  // Hand-interleaved order: the good chi order.
  std::vector<circuit::ObjRef> inter;
  inter.push_back({true, 0});
  for (unsigned i = 0; i < bits; ++i) {
    inter.push_back({false, i});
    inter.push_back({false, bits + i});
  }
  runOrder(n, "interleaved", inter);

  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    runOrder(n, "random" + std::to_string(seed),
             circuit::makeOrder(n, {circuit::OrderKind::kRandom, seed}));
  }

  std::printf(
      "\nThe BFV column is flat: \"the property of Boolean functional\n"
      "vectors to factor out functional dependencies can often reduce the\n"
      "variable ordering requirements\" (paper, §3).\n");

  // The other escape hatch from a bad static order: dynamic reordering.
  // Run the characteristic-function flow from the adversarial separated
  // order, plain and with Config::auto_reorder — sifting discovers the
  // interleaved pairing at runtime and caps the peak.
  std::printf(
      "\nchi flow (TR engine) from the separated order, without/with\n"
      "dynamic sifting (Config::auto_reorder):\n\n");
  const auto separated =
      circuit::makeOrder(n, {circuit::OrderKind::kNatural, 0});
  runTrOrder(n, "separated", separated, {});
  bdd::Manager::Config cfg;
  cfg.auto_reorder = true;
  cfg.reorder_threshold = 512;
  runTrOrder(n, "separated + sift", separated, cfg);
  return 0;
}
