// Bfv basics: elementary-set constructors, observers, characteristic
// function (§2.7 identity), canonicity checking.
#include "bfv/bfv.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

namespace bfvr::bfv {

namespace {

void requireIncreasing(const std::vector<unsigned>& vars) {
  for (std::size_t i = 1; i < vars.size(); ++i) {
    if (vars[i - 1] >= vars[i]) {
      throw std::invalid_argument(
          "choice variables must be strictly increasing (component order == "
          "BDD order)");
    }
  }
}

}  // namespace

Bfv Bfv::emptySet(Manager& m, std::vector<unsigned> choice_vars) {
  requireIncreasing(choice_vars);
  return Bfv(&m, std::move(choice_vars), {}, /*empty=*/true);
}

Bfv Bfv::universe(Manager& m, std::vector<unsigned> choice_vars) {
  requireIncreasing(choice_vars);
  std::vector<Bdd> comps;
  comps.reserve(choice_vars.size());
  for (unsigned v : choice_vars) comps.push_back(m.var(v));
  return Bfv(&m, std::move(choice_vars), std::move(comps), false);
}

Bfv Bfv::point(Manager& m, std::vector<unsigned> choice_vars,
               const std::vector<bool>& bits) {
  requireIncreasing(choice_vars);
  if (bits.size() != choice_vars.size()) {
    throw std::invalid_argument("point: wrong number of bits");
  }
  std::vector<Bdd> comps;
  comps.reserve(bits.size());
  for (bool b : bits) comps.push_back(b ? m.one() : m.zero());
  return Bfv(&m, std::move(choice_vars), std::move(comps), false);
}

Bfv Bfv::cubeSet(Manager& m, std::vector<unsigned> choice_vars,
                 std::span<const signed char> values) {
  requireIncreasing(choice_vars);
  if (values.size() != choice_vars.size()) {
    throw std::invalid_argument("cubeSet: wrong number of values");
  }
  std::vector<Bdd> comps;
  comps.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < 0) {
      comps.push_back(m.var(choice_vars[i]));
    } else {
      comps.push_back(values[i] != 0 ? m.one() : m.zero());
    }
  }
  return Bfv(&m, std::move(choice_vars), std::move(comps), false);
}

Bfv Bfv::fromMembers(Manager& m, std::vector<unsigned> choice_vars,
                     std::span<const std::uint64_t> members) {
  const unsigned n = static_cast<unsigned>(choice_vars.size());
  Bfv acc = emptySet(m, choice_vars);
  std::vector<bool> bits(n);
  for (std::uint64_t mem : members) {
    for (unsigned i = 0; i < n; ++i) bits[i] = ((mem >> i) & 1U) != 0;
    acc = setUnion(acc, point(m, choice_vars, bits));
  }
  return acc;
}

Bfv Bfv::fromComponents(Manager& m, std::vector<unsigned> choice_vars,
                        std::vector<Bdd> comps, bool trusted) {
  requireIncreasing(choice_vars);
  if (comps.size() != choice_vars.size()) {
    throw std::invalid_argument("fromComponents: arity mismatch");
  }
  Bfv r(&m, std::move(choice_vars), std::move(comps), false);
  if (!trusted) {
    std::string why;
    if (!r.checkCanonical(&why)) {
      throw std::invalid_argument("fromComponents: not canonical: " + why);
    }
  }
  return r;
}

bool Bfv::operator==(const Bfv& o) const {
  if (mgr_ != o.mgr_ || vars_ != o.vars_) return false;
  if (empty_ || o.empty_) return empty_ == o.empty_;
  return comps_ == o.comps_;
}

bool Bfv::contains(const std::vector<bool>& bits) const {
  if (isNull()) throw std::logic_error("contains on null Bfv");
  if (empty_) return false;
  if (bits.size() != vars_.size()) {
    throw std::invalid_argument("contains: wrong number of bits");
  }
  std::vector<bool> assignment(mgr_->numVars(), false);
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    assignment[vars_[i]] = bits[i];
  }
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (mgr_->eval(comps_[i], assignment) != bits[i]) return false;
  }
  return true;
}

Bdd Bfv::toChar() const {
  if (isNull()) throw std::logic_error("toChar on null Bfv");
  if (empty_) return mgr_->zero();
  // chi = AND_i (v_i XNOR f_i): the conjunctive-decomposition identity of
  // §2.7 — valid because canonical sets satisfy "X in S iff F(X) == X".
  if (mgr_->threads() > 1 && comps_.size() > 1) {
    // Materialize the choice-variable BDDs up front: variable creation may
    // grow manager tables and must stay on the owner thread.
    std::vector<Bdd> vs(comps_.size());
    for (std::size_t i = 0; i < comps_.size(); ++i) {
      vs[i] = mgr_->var(vars_[i]);
    }
    // Inputs (vs, comps_) and outputs (terms) stay disjoint so each body is
    // idempotent: the pressure ladder inside parallelInvoke may rerun the
    // whole batch after a mid-batch NodeBudgetExceeded/capacity throw.
    std::vector<Bdd> terms(comps_.size());
    std::vector<std::function<void()>> fns;
    fns.reserve(comps_.size());
    for (std::size_t i = 0; i < comps_.size(); ++i) {
      fns.push_back(
          [this, &vs, &terms, i] { terms[i] = mgr_->xnorB(vs[i], comps_[i]); });
    }
    mgr_->parallelInvoke(fns);
    // Balanced pairwise AND tree: independent conjunctions per level give
    // the pool work, and intermediate results stay smaller than the linear
    // left-fold's prefixes on wide vectors.
    while (terms.size() > 1) {
      std::vector<Bdd> folded((terms.size() + 1) / 2);
      std::vector<std::function<void()>> ands;
      ands.reserve(terms.size() / 2);
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        ands.push_back(
            [&terms, &folded, i] { folded[i / 2] = terms[i] & terms[i + 1]; });
      }
      if (terms.size() % 2 != 0) folded.back() = terms.back();
      mgr_->parallelInvoke(ands);
      terms = std::move(folded);
    }
    return terms.front();
  }
  Bdd chi = mgr_->one();
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    chi &= mgr_->xnorB(mgr_->var(vars_[i]), comps_[i]);
  }
  return chi;
}

double Bfv::countStates() const {
  if (isNull()) throw std::logic_error("countStates on null Bfv");
  if (empty_) return 0.0;
  return mgr_->satCount(toChar(), width());
}

std::size_t Bfv::sharedSize() const {
  if (isNull() || empty_) return 0;
  return mgr_->sharedNodeCount(comps_);
}

ComponentConditions Bfv::conditions(unsigned i) const {
  if (isNull() || empty_) throw std::logic_error("conditions of empty Bfv");
  const Bdd hi = mgr_->cofactor(comps_[i], vars_[i], true);
  const Bdd lo = mgr_->cofactor(comps_[i], vars_[i], false);
  // f = f1 | fc & v  =>  f|v=0 = f1, f|v=1 = f1 | fc.
  ComponentConditions c;
  c.forced1 = lo;
  c.choice = hi & ~lo;
  c.forced0 = ~hi;
  return c;
}

std::vector<bool> Bfv::select(const std::vector<bool>& choices) const {
  if (isNull() || empty_) throw std::logic_error("select on empty Bfv");
  if (choices.size() != vars_.size()) {
    throw std::invalid_argument("select: wrong number of choices");
  }
  std::vector<bool> assignment(mgr_->numVars(), false);
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    assignment[vars_[i]] = choices[i];
  }
  std::vector<bool> out(comps_.size());
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    out[i] = mgr_->eval(comps_[i], assignment);
  }
  return out;
}

std::vector<std::vector<bool>> Bfv::enumerate(std::size_t limit) const {
  std::vector<std::vector<bool>> out;
  if (isNull() || empty_ || limit == 0) return out;
  const Bdd chi = toChar();
  std::vector<bool> bits(vars_.size(), false);
  // Depth-first over the components in order, 0 branch first: members come
  // out ascending in the paper's weighted order.
  auto rec = [&](auto&& self, std::size_t i, const Bdd& rest) -> void {
    if (out.size() >= limit || rest.isFalse()) return;
    if (i == vars_.size()) {
      out.push_back(bits);
      return;
    }
    bits[i] = false;
    self(self, i + 1, mgr_->cofactor(rest, vars_[i], false));
    bits[i] = true;
    self(self, i + 1, mgr_->cofactor(rest, vars_[i], true));
  };
  rec(rec, 0, chi);
  return out;
}

bool Bfv::checkCanonical(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (isNull()) return fail("null");
  if (empty_) return true;
  for (std::size_t i = 1; i < vars_.size(); ++i) {
    if (vars_[i - 1] >= vars_[i]) return fail("choice vars not increasing");
  }
  // Support containment and positive unateness.
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    for (unsigned v : mgr_->support(comps_[i])) {
      const auto it = std::find(vars_.begin(), vars_.end(), v);
      if (it == vars_.end() ||
          static_cast<std::size_t>(it - vars_.begin()) > i) {
        return fail("component " + std::to_string(i) +
                    " depends on variable v" + std::to_string(v) +
                    " outside its prefix");
      }
    }
    const Bdd lo = mgr_->cofactor(comps_[i], vars_[i], false);
    const Bdd hi = mgr_->cofactor(comps_[i], vars_[i], true);
    if (!lo.implies(hi)) {
      return fail("component " + std::to_string(i) +
                  " not positive unate in its choice variable");
    }
  }
  // Idempotence: F(F(v)) == F(v).
  std::vector<Bdd> map(mgr_->numVars());
  for (std::size_t i = 0; i < vars_.size(); ++i) map[vars_[i]] = comps_[i];
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (mgr_->vectorCompose(comps_[i], map) != comps_[i]) {
      return fail("component " + std::to_string(i) + " not idempotent");
    }
  }
  return true;
}

void Bfv::requireCompatible(const Bfv& o) const {
  if (isNull() || o.isNull()) {
    throw std::logic_error("operation on null Bfv");
  }
  if (mgr_ != o.mgr_) {
    throw std::logic_error("Bfv operands from different managers");
  }
  if (vars_ != o.vars_) {
    throw std::invalid_argument(
        "Bfv operands must share choice variables and component order");
  }
}

}  // namespace bfvr::bfv
