// Hybrid image computation — the "to split or to conjoin" idea the paper
// cites ([11], Moon et al.): keep the reached set as a characteristic
// function, but compute each image either by the partitioned-relation
// AND-EXISTS chain (conjoin) or by constraining the transition functions
// with the from-set and recursively splitting the range (split). Splitting
// wins when the from-set is small or strongly constrains the functions;
// the relation wins on broad frontiers. The chooser here is the simple
// size heuristic from the paper's description: split when the constrained
// transition functions are (much) smaller than the relation clusters.
#include "reach/internal.hpp"
#include "sym/image.hpp"
#include "sym/simulate.hpp"

namespace bfvr::reach {

ReachResult reachHybrid(sym::StateSpace& s, const ReachOptions& opts) {
  Manager& m = s.manager();
  return internal::runGuarded(
      m, opts, [&](ReachResult& r, internal::RunGuard& guard,
                   internal::Tracer& tracer) {
        internal::applyReorderPolicy(s, opts);
        const sym::TransitionRelation tr(s, opts.transition);
        const std::vector<Bdd> delta = sym::transitionFunctions(s);
        const std::size_t tr_size = tr.sharedSize();
        guard.sample();

        Bdd reached, from;
        if (opts.resume != nullptr) {
          r.iterations = opts.resume->iteration;
          reached = opts.resume->reached_chi;
          from = opts.resume->from_chi;
        } else {
          reached = sym::initialChar(s);
          from = reached;
        }
        for (;;) {
          ++r.iterations;
          tracer.beginIteration(r.iterations, [&] {
            return std::pair{m.satCount(from, s.numLatches()),
                             m.nodeCount(from)};
          });
          // The split-vs-conjoin chooser and the chosen image computation
          // are one kImage phase: together they are "the image step". The
          // constrained vector stays at iteration scope so its handles live
          // exactly as long as they did before tracing existed.
          std::vector<Bdd> constrained(delta.size());
          const Bdd img = tracer.timed(obs::Phase::kImage, [&] {
            // Constrain the transition functions by the from-set and
            // compare against the relation to decide the method.
            for (std::size_t i = 0; i < delta.size(); ++i) {
              constrained[i] = m.constrain(delta[i], from);
            }
            const std::size_t split_size = m.sharedNodeCount(constrained);
            if (split_size * 2 < tr_size + m.nodeCount(from)) {
              const Bdd img_u = sym::rangeChar(s, constrained, m.one());
              return m.permute(img_u, s.permParamToCurrent());
            }
            return tr.image(from);
          });
          guard.sample();
          const Bdd next = tracer.timed(obs::Phase::kUnion,
                                        [&] { return reached | img; });
          const bool fixpoint = next == reached;
          Bdd frontier;  // iteration scope: alive across the maybeGc() below
          if (!fixpoint) {
            const auto check = tracer.phase(obs::Phase::kCheck);
            frontier = img & ~reached;
            reached = next;
            if (opts.use_frontier &&
                m.nodeCount(frontier) < m.nodeCount(reached)) {
              from = frontier;
            } else {
              from = reached;
            }
          }
          tracer.endIteration();
          if (fixpoint) break;
          internal::maybeStepReorder(m, opts, r.iterations);
          m.maybeGc();
          guard.sample();
          if (internal::checkpointDue(opts, r.iterations)) {
            io::Checkpoint c;
            c.engine = "hybrid";
            c.iteration = r.iterations;
            c.reached = {reached};
            c.frontier = {from};
            internal::writeCheckpoint(m, opts, std::move(c));
          }
          if (opts.max_iterations != 0 &&
              r.iterations >= opts.max_iterations) {
            break;
          }
        }
        r.states = m.satCount(reached, s.numLatches());
        r.chi_nodes = m.nodeCount(reached);
        r.reached_chi = reached;
        const Bfv f = bfv::fromChar(m, reached, s.currentVars());
        r.bfv_nodes = f.sharedSize();
        r.reached_bfv = f;
      });
}

}  // namespace bfvr::reach
