file(REMOVE_RECURSE
  "libbfvr_circuit.a"
)
