// End-to-end service tests (src/svc/server + client) over a real
// Unix-domain socket: handshake, submission and completion, admission
// rejections that name the offending manifest key, queued-job cancellation,
// eviction-via-checkpoint with bit-identical resume on a different worker,
// protocol abuse (garbage bytes, abrupt disconnects) leaving the server
// healthy, stats, and clean shutdown with zero leaked nodes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "run/run.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace bfvr::svc {
namespace {

/// Unique-per-process socket path, short enough for sun_path.
std::string sockPath(const char* tag) {
  return "/tmp/bfvr_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

Server::Options baseOptions(const std::string& sock) {
  Server::Options o;
  o.endpoint = "unix:" + sock;
  o.workers = 2;
  o.warm_managers = true;
  o.tenants = parseTenantsString("alpha:3\nbravo:2\ncarol:1\n");
  o.spool_dir = "/tmp";
  o.checkpoint_every = 1;
  o.name = "svc-test";
  return o;
}

TEST(SvcServer, HandshakeSubmitAndComplete) {
  const std::string sock = sockPath("basic");
  Server server(baseOptions(sock));
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    EXPECT_EQ(client.serverName(), "svc-test");
    EXPECT_GT(client.session(), 0u);
    const std::uint64_t tag =
        client.submit("circuit=gen:counter:4:10 engine=bfv");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    const JobDone done = client.awaitDone(*job);
    EXPECT_EQ(done.status, "done");
    EXPECT_DOUBLE_EQ(done.states, 10.0);  // mod-10 counter: 10 states
    EXPECT_GT(done.iterations, 0u);
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
  EXPECT_EQ(server.warmStats().leaked_nodes, 0u);
  EXPECT_EQ(server.warmStats().resets_failed, 0u);
}

TEST(SvcServer, IterationUpdatesStream) {
  const std::string sock = sockPath("stream");
  Server server(baseOptions(sock));
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:6:40");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    unsigned updates = 0;
    std::uint64_t last_iteration = 0;
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* u = std::get_if<IterationUpdate>(&*ev)) {
        EXPECT_EQ(u->job, *job);
        EXPECT_GT(u->iteration, last_iteration);
        last_iteration = u->iteration;
        ++updates;
      } else if (const auto* d = std::get_if<JobDone>(&*ev)) {
        EXPECT_EQ(d->status, "done");
        break;
      }
    }
    // A mod-40 counter takes 40 frontier iterations; every one streams.
    EXPECT_GE(updates, 40u);
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcServer, RejectionsNameTheOffendingKey) {
  const std::string sock = sockPath("reject");
  Server server(baseOptions(sock));
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    std::string reason;
    // Bad value: the reject must name the key and the bad value.
    std::uint64_t tag = client.submit("circuit=gen:counter:4:10 nodes=abc");
    EXPECT_FALSE(client.awaitAdmission(tag, &reason).has_value());
    EXPECT_NE(reason.find("key 'nodes'"), std::string::npos);
    EXPECT_NE(reason.find("'abc'"), std::string::npos);
    // Unknown key.
    tag = client.submit("circuit=gen:counter:4:10 frobnicate=1");
    EXPECT_FALSE(client.awaitAdmission(tag, &reason).has_value());
    EXPECT_NE(reason.find("unknown key 'frobnicate'"), std::string::npos);
    // Not a job line at all.
    tag = client.submit("this is not key=value");
    EXPECT_FALSE(client.awaitAdmission(tag, &reason).has_value());
    // The session survives rejections: a good job still runs.
    tag = client.submit("circuit=gen:counter:3:4");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(client.awaitDone(*job).status, "done");
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcServer, CancelQueuedJob) {
  const std::string sock = sockPath("cancel");
  Server::Options opts = baseOptions(sock);
  opts.workers = 1;  // one worker: the second submission must queue
  opts.stream_iterations = false;
  Server server(opts);
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    // Plug the single worker with a job far too big to finish before the
    // cancels below land.
    const std::uint64_t plug_tag =
        client.submit("circuit=gen:counter:20:1000000 deadline=10");
    std::optional<std::uint64_t> plug = client.awaitAdmission(plug_tag);
    ASSERT_TRUE(plug.has_value());
    const std::uint64_t tag = client.submit("circuit=gen:counter:4:10");
    std::optional<std::uint64_t> queued = client.awaitAdmission(tag);
    ASSERT_TRUE(queued.has_value());
    client.cancel(*queued);
    const JobDone done = client.awaitDone(*queued);
    EXPECT_EQ(done.status, "cancelled");
    EXPECT_NE(done.message.find("queued"), std::string::npos);
    client.cancel(*plug);  // running-job cancel: via the interrupt hook
    EXPECT_EQ(client.awaitDone(*plug).status, "cancelled");
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcServer, EvictionMigratesAndResumesBitIdentical) {
  // Reference: the same job uninterrupted. Big enough (4000 frontier
  // iterations) that the evict below always lands mid-run.
  run::JobSpec ref;
  ref.circuit = "gen:counter:12:4000";
  const run::JobResult ref_result = run::executeJob(ref);
  ASSERT_EQ(ref_result.status, RunStatus::kDone);

  const std::string sock = sockPath("evict");
  Server server(baseOptions(sock));  // 2 workers: migration has a target
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:12:4000");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    bool evict_sent = false, evicted_seen = false;
    std::uint32_t evicted_from = 0;
    JobDone done;
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* u = std::get_if<IterationUpdate>(&*ev)) {
        // Evict once the first spool snapshot surely exists
        // (checkpoint_every=1, so any iteration >= 2 works).
        if (!evict_sent && u->iteration >= 5) {
          client.evict(*job);
          evict_sent = true;
        }
      } else if (const auto* e = std::get_if<JobEvicted>(&*ev)) {
        evicted_seen = true;
        evicted_from = e->worker;
        EXPECT_GE(e->iteration, 5u);
      } else if (const auto* d = std::get_if<JobDone>(&*ev)) {
        done = *d;
        break;
      }
    }
    ASSERT_TRUE(evict_sent) << "job finished before the evict could land";
    ASSERT_TRUE(evicted_seen);
    EXPECT_TRUE(done.resumed);
    EXPECT_EQ(done.evictions, 1u);
    // Migration: the resume ran on the other worker.
    EXPECT_NE(done.worker, evicted_from);
    // Bit-identical continuation: same fixpoint, same iteration count.
    EXPECT_EQ(done.status, "done");
    EXPECT_DOUBLE_EQ(done.states, ref_result.reach.states);
    EXPECT_EQ(done.iterations, ref_result.reach.iterations);
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
  EXPECT_EQ(server.warmStats().leaked_nodes, 0u);
}

TEST(SvcServer, GarbageBytesGetWireErrorNotACrash) {
  const std::string sock = sockPath("garbage");
  Server server(baseOptions(sock));
  server.start();
  {
    // A raw connection spewing junk: the server must answer with a kError
    // frame (best-effort) and close only that session.
    Fd raw = connectTo(Endpoint::parse("unix:" + sock));
    std::vector<std::uint8_t> junk(128, 0x5A);
    ASSERT_EQ(::send(raw.get(), junk.data(), junk.size(), 0),
              static_cast<ssize_t>(junk.size()));
    std::optional<Frame> reply = recvFrame(raw);
    if (reply.has_value()) {  // reply can race the close; EOF is also fine
      EXPECT_EQ(reply->type, FrameType::kError);
    }
  }
  {
    // An abrupt mid-frame disconnect: header promises more than arrives.
    Fd raw = connectTo(Endpoint::parse("unix:" + sock));
    Submit s;
    s.tag = 1;
    s.line = "circuit=gen:counter:4:10";
    const std::vector<std::uint8_t> bytes = encodeFrame(s.encode());
    ASSERT_GT(bytes.size(), 10u);
    ASSERT_EQ(::send(raw.get(), bytes.data(), 10, 0), 10);
    raw.close();
  }
  // The server is still fully functional for a well-behaved client.
  {
    Client client("unix:" + sock, "bravo");
    const std::uint64_t tag = client.submit("circuit=gen:counter:3:4");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(client.awaitDone(*job).status, "done");
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
  EXPECT_EQ(server.warmStats().leaked_nodes, 0u);
}

TEST(SvcServer, DisconnectMidJobCancelsAndServerSurvives) {
  const std::string sock = sockPath("discon");
  Server server(baseOptions(sock));
  server.start();
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag =
        client.submit("circuit=gen:counter:20:1000000 deadline=10");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    // Drop the connection with the job still running — no Bye, no Cancel.
  }
  // The orphaned job is cancelled server-side; a new client gets service
  // immediately (both workers free once the cancel lands).
  {
    Client client("unix:" + sock, "bravo");
    const std::uint64_t tag = client.submit("circuit=gen:counter:4:10");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(client.awaitDone(*job).status, "done");
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
  EXPECT_EQ(server.warmStats().leaked_nodes, 0u);
}

TEST(SvcServer, StatsReportOverTheWire) {
  const std::string sock = sockPath("stats");
  Server server(baseOptions(sock));
  server.start();
  {
    Client client("unix:" + sock, "carol");
    const std::uint64_t tag = client.submit("circuit=gen:counter:3:4");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    (void)client.awaitDone(*job);
    client.queryStats(StatsQuery::kAllSections);
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* reply = std::get_if<StatsReply>(&*ev)) {
        EXPECT_NE(reply->json.find("\"jobs_done\": 1"), std::string::npos);
        EXPECT_NE(reply->json.find("\"server\": \"svc-test\""),
                  std::string::npos);
        EXPECT_NE(reply->json.find("\"tenant\": \"carol\""),
                  std::string::npos);
        // Live scheduler state.
        EXPECT_NE(reply->json.find("\"queue_depth\": 0"), std::string::npos);
        EXPECT_NE(reply->json.find("\"running\": 0"), std::string::npos);
        // The embedded metrics document carries per-tenant counters and the
        // three serving-latency histograms, all live by now.
        EXPECT_NE(
            reply->json.find("bfvr_svc_admitted_total{tenant=\\\"carol\\\"}"),
            std::string::npos);
        for (const char* h :
             {"bfvr_pool_queue_wait_seconds", "bfvr_pool_exec_seconds",
              "bfvr_svc_dispatch_seconds"}) {
          EXPECT_NE(reply->json.find(h), std::string::npos) << h;
        }
        // The span timeline of the finished job, with its lifecycle steps.
        for (const char* step : {"\"received\"", "\"admitted\"", "\"queued\"",
                                 "\"dispatched\"", "\"done\""}) {
          EXPECT_NE(reply->json.find(step), std::string::npos) << step;
        }
        // The flight section arrives when asked for.
        EXPECT_NE(reply->json.find("\"flight\""), std::string::npos);
        EXPECT_NE(reply->json.find("stats-query"), std::string::npos);
        break;
      }
    }
    client.bye();
  }
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcServer, AcceptedTraceIdMatchesTheSpan) {
  const std::string sock = sockPath("trace");
  Server server(baseOptions(sock));
  server.start();
  std::uint64_t trace = 0, job_id = 0;
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:3:4");
    for (;;) {
      std::optional<Event> ev = client.next();
      ASSERT_TRUE(ev.has_value());
      if (const auto* acc = std::get_if<Accepted>(&*ev)) {
        EXPECT_EQ(acc->tag, tag);
        trace = acc->trace;
        job_id = acc->job;
        break;
      }
    }
    EXPECT_GT(trace, 0u);
    (void)client.awaitDone(job_id);
    client.bye();
  }
  // The span the server retained carries the same trace id and a worker.
  bool found = false;
  for (const obs::JobSpan& span : server.spans()) {
    if (span.job != job_id) continue;
    found = true;
    EXPECT_EQ(span.trace_id, trace);
    EXPECT_EQ(span.tenant, "alpha");
    EXPECT_EQ(span.status, "done");
    ASSERT_EQ(span.workers.size(), 1u);
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(server.spanCount("alpha"), 1u);
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcServer, StatsSectionsAreSelectable) {
  const std::string sock = sockPath("sections");
  Server server(baseOptions(sock));
  server.start();
  // No sections: counters only, no metrics/spans/flight keys.
  const std::string lean = server.statsJson(0);
  EXPECT_EQ(lean.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(lean.find("\"spans\""), std::string::npos);
  EXPECT_EQ(lean.find("\"flight\""), std::string::npos);
  EXPECT_NE(lean.find("\"queue_depth\""), std::string::npos);
  // Each flag brings exactly its own section.
  const std::string with_flight = server.statsJson(StatsQuery::kIncludeFlight);
  EXPECT_NE(with_flight.find("\"flight\""), std::string::npos);
  EXPECT_EQ(with_flight.find("\"metrics\""), std::string::npos);
  server.requestShutdown(true);
  server.waitStopped();
}

TEST(SvcServer, ShutdownViaProtocolDrains) {
  const std::string sock = sockPath("shut");
  Server server(baseOptions(sock));
  server.start();
  std::uint64_t job_id = 0;
  {
    Client client("unix:" + sock, "alpha");
    const std::uint64_t tag = client.submit("circuit=gen:counter:5:20");
    std::optional<std::uint64_t> job = client.awaitAdmission(tag);
    ASSERT_TRUE(job.has_value());
    job_id = *job;
    client.shutdownServer(true);  // drain: the in-flight job still finishes
    EXPECT_EQ(client.awaitDone(job_id).status, "done");
    client.bye();
  }
  server.waitStopped();
  EXPECT_EQ(server.warmStats().leaked_nodes, 0u);
  EXPECT_EQ(server.warmStats().resets_failed, 0u);
}

}  // namespace
}  // namespace bfvr::svc
