#!/usr/bin/env python3
"""Generate LFSR / CRC .bench workloads for the reachability benches.

Two circuit families, structurally identical to the C++ generators in
src/circuit/generators.cpp (same tap tables, same signal names, same gate
fold order), so a parsed file and the generated netlist are bit-equivalent
under concrete simulation:

  lfsr <bits>   free-running XNOR-feedback LFSR ("lfsrf<bits>"): no primary
                input, all-zero start state, 2^bits - 1 reachable states
                (the all-ones lockup state is the single unreachable one).
                Exercises the .bench parser's XNOR path and is XOR-affine,
                so the lz engine tracks it exactly.
  crc  <bits>   serial CRC ("crc<bits>"): the same tap polynomial with a
                data input XORed into the feedback. All 2^bits states
                reachable; also XOR-affine.

Usage:
  tools/gen_lfsr.py lfsr 16                 # .bench on stdout
  tools/gen_lfsr.py crc 16 -o data/crc16.bench
  tools/gen_lfsr.py --shipped data         # write lfsr16/lfsr32/crc16
                                           # and print their manifest rows

Widths must appear in TAPS below. Every entry has an even tap count: with
XNOR feedback that pins the lockup state at all-ones, keeping the all-zero
start state on the long cycle (the same invariant generators.cpp documents).
"""

import argparse
import os
import sys

# Mirror of lfsrTaps() in src/circuit/generators.cpp. Keep the two tables
# in sync: tests cross-check generated files against the C++ netlists.
TAPS = {
    3: [3, 2],
    4: [4, 3],
    5: [5, 3],
    6: [6, 5],
    7: [7, 6],
    8: [8, 6, 5, 4],
    9: [9, 5],
    10: [10, 7],
    11: [11, 9],
    12: [12, 11, 10, 4],
    16: [16, 15, 13, 4],
    17: [17, 14],
    20: [20, 17],
    24: [24, 23, 22, 17],
    28: [28, 25],
    32: [32, 22, 2, 1],
}


def taps_for(bits):
    if bits not in TAPS:
        raise SystemExit(f"gen_lfsr: no tap polynomial for width {bits} "
                         f"(known: {sorted(TAPS)})")
    return TAPS[bits]


def lfsr_free(bits):
    """Free-running XNOR LFSR; mirrors circuit::makeLfsrFree."""
    taps = taps_for(bits)
    lines = [f"# lfsrf{bits}", f"OUTPUT(q{bits - 1})"]
    lines += [f"q0 = DFF(fbn)"]
    lines += [f"q{i} = DFF(q{i - 1})" for i in range(1, bits)]
    # XOR-fold all taps but the last, complement on the last step.
    fb = f"q{taps[0] - 1}"
    for t in range(1, len(taps) - 1):
        lines.append(f"fb{t} = XOR({fb}, q{taps[t] - 1})")
        fb = f"fb{t}"
    lines.append(f"fbn = XNOR({fb}, q{taps[-1] - 1})")
    return "\n".join(lines) + "\n"


def crc(bits):
    """Serial CRC (LFSR with data input); mirrors circuit::makeCrc."""
    taps = taps_for(bits)
    lines = [f"# crc{bits}", "INPUT(din)", f"OUTPUT(q{bits - 1})"]
    lines += [f"q0 = DFF(fbd)"]
    lines += [f"q{i} = DFF(q{i - 1})" for i in range(1, bits)]
    fb = f"q{taps[0] - 1}"
    for t in range(1, len(taps)):
        lines.append(f"fb{t} = XOR({fb}, q{taps[t] - 1})")
        fb = f"fb{t}"
    lines.append(f"fbd = XOR({fb}, din)")
    return "\n".join(lines) + "\n"


# The circuits shipped in data/ plus their all_circuits.manifest rows. The
# LFSRs get an iteration cap: a free-running LFSR reaches one new state per
# frontier step, so a full lfsr16 fixpoint is 2^16 - 1 iterations — fine
# for the lz engine, pointless for a BDD portfolio smoke.
SHIPPED = [
    ("lfsr16.bench", lfsr_free, 16,
     "circuit=data/lfsr16.bench   name=lfsr16    deadline=30 iters=300"),
    ("crc16.bench", crc, 16,
     "circuit=data/crc16.bench    name=crc16     deadline=30"),
    ("lfsr32.bench", lfsr_free, 32,
     "circuit=data/lfsr32.bench   name=lfsr32    deadline=30 iters=300"),
]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("family", nargs="?", choices=["lfsr", "crc"])
    ap.add_argument("bits", nargs="?", type=int)
    ap.add_argument("-o", "--output", help="write here instead of stdout")
    ap.add_argument("--shipped", metavar="DIR",
                    help="write the shipped workload set into DIR and print "
                         "the matching manifest rows")
    args = ap.parse_args()

    if args.shipped:
        for fname, fn, bits, row in SHIPPED:
            path = os.path.join(args.shipped, fname)
            with open(path, "w") as f:
                f.write(fn(bits))
            print(row)
        return

    if args.family is None or args.bits is None:
        ap.error("need <family> <bits> (or --shipped DIR)")
    text = lfsr_free(args.bits) if args.family == "lfsr" else crc(args.bits)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
