// Dynamic variable reordering: adjacent-level swap, Rudell sifting, window
// permutation, and the public order-management API (see reorder.hpp for the
// design overview).
//
// Swap invariants (the whole subsystem rests on these):
//  * A node at the upper swap level that depends on the lower variable is
//    rewritten IN PLACE: its index — and therefore every raw edge pointing
//    at it — keeps denoting the same function. Nodes that do not depend on
//    the lower variable are untouched; they simply change level.
//  * Canonical complement form survives the swap without fixups: the new
//    high child A = (x ? H1 : L1) is built from H's high chain, and H (a
//    `high` edge) is regular by invariant, so A is regular. The new low
//    child B re-canonicalizes inside swapMkNode if needed.
//  * No unique-table collision is possible: a pre-existing lower-variable
//    node cannot have upper-variable children before the swap, and two
//    distinct rewritten nodes denote distinct functions.
//
// While reordering_ is set the manager keeps exact per-node reference
// counts (refs_), so nodes orphaned by a swap are reclaimed immediately and
// in_use_ is the exact DAG size that sifting minimizes.
#include <algorithm>
#include <cassert>

#include "bdd/bdd.hpp"
#include "util/stats.hpp"

namespace bfvr::bdd {

const char* to_string(ReorderMethod m) noexcept {
  switch (m) {
    case ReorderMethod::kSift:
      return "sift";
    case ReorderMethod::kSiftConverge:
      return "sift-conv";
    case ReorderMethod::kWindow2:
      return "window2";
    case ReorderMethod::kWindow3:
      return "window3";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Transient reference counting
// ---------------------------------------------------------------------------

void Manager::reorderPrologue() {
  // GC first: it drops dead nodes (so the refcounts below see live nodes
  // only) and clears the computed cache, whose entries would otherwise
  // dangle across node rewrites.
  gc();
  buildRefs();
  reordering_ = true;
}

void Manager::reorderDone() {
  reordering_ = false;
  refs_.clear();
}

void Manager::buildRefs() {
  refs_.assign(nodes_.size(), 0);
  refs_[0] = 1;  // the terminal is permanently anchored
  for (const Bdd* h = handles_; h != nullptr; h = h->next_) {
    ++refs_[index(h->e_)];
  }
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;
    ++refs_[index(n.high)];
    ++refs_[index(n.low)];
  }
}

void Manager::unlinkFromSubtable(std::uint32_t i) {
  Node& n = nodes_[i];
  SubTable& st = subtables_[n.var];
  const std::size_t slot = subSlot(st, n.high, n.low);
  std::uint32_t* p = &st.buckets[slot];
  while (*p != i) p = &nodes_[*p].next;
  *p = n.next;
  --st.count;
}

void Manager::edgeDeref(Edge e) {
  deref_stack_.clear();
  deref_stack_.push_back(index(e));
  while (!deref_stack_.empty()) {
    const std::uint32_t i = deref_stack_.back();
    deref_stack_.pop_back();
    if (i == 0) continue;  // terminal: never freed
    assert(refs_[i] > 0);
    if (--refs_[i] != 0) continue;
    Node& n = nodes_[i];
    unlinkFromSubtable(i);
    deref_stack_.push_back(index(n.high));
    deref_stack_.push_back(index(n.low));
    n.var = kFreeVar;
    n.next = free_list_;
    free_list_ = i;
    --in_use_;
  }
}

/// mkNode twin used during reordering: same hash-consing, but maintains the
/// transient refcounts (a freshly created node references its children) and
/// skips level-order assertions, which do not hold mid-swap.
Edge Manager::swapMkNode(std::uint32_t var, Edge high, Edge low) {
  if (high == low) return high;
  if (isCompl(high)) {
    return negate(swapMkNode(var, negate(high), negate(low)));
  }
  {
    SubTable& st = subtables_[var];
    const std::size_t slot = subSlot(st, high, low);
    for (std::uint32_t i = st.buckets[slot]; i != kNil; i = nodes_[i].next) {
      const Node& n = nodes_[i];
      if (n.high == high && n.low == low) return i << 1;
    }
  }
  const std::uint32_t idx = allocNode();
  if (refs_.size() < nodes_.size()) refs_.resize(nodes_.size(), 0);
  refs_[idx] = 0;  // the caller adds the parent reference
  Node& n = nodes_[idx];
  n.var = var;
  n.high = high;
  n.low = low;
  n.mark = 0;
  edgeRef(high);
  edgeRef(low);
  SubTable& st = subtables_[var];
  const std::size_t slot = subSlot(st, high, low);
  n.next = st.buckets[slot];
  st.buckets[slot] = idx;
  ++st.count;
  ++stats_.nodes_created;
  if (st.count > st.buckets.size()) growSubTable(var);
  return idx << 1;
}

// ---------------------------------------------------------------------------
// Adjacent-level swap
// ---------------------------------------------------------------------------

void Manager::swapRaw(unsigned l) {
  const std::uint32_t x = level2var_[l];      // moves down to l + 1
  const std::uint32_t y = level2var_[l + 1];  // moves up to l
  // Update the maps first: node construction below must see the new order.
  level2var_[l] = y;
  level2var_[l + 1] = x;
  var2level_[x] = l + 1;
  var2level_[y] = l;
  ++stats_.reorder_swaps;

  // Partition the var-x nodes: a node with a var-y child must be rewritten;
  // the rest keep their children (all below level l + 1) and just sink one
  // level with x. Keepers stay linked so rewrites can share them.
  SubTable& stx = subtables_[x];
  rewrite_list_.clear();
  for (std::uint32_t& head : stx.buckets) {
    std::uint32_t* p = &head;
    while (*p != kNil) {
      const std::uint32_t i = *p;
      Node& n = nodes_[i];
      if (varOf(n.high) == y || varOf(n.low) == y) {
        *p = n.next;
        rewrite_list_.push_back(i);
      } else {
        p = &n.next;
      }
    }
  }
  stx.count -= rewrite_list_.size();

  for (const std::uint32_t i : rewrite_list_) {
    const Edge h = nodes_[i].high;  // regular by invariant
    const Edge lo = nodes_[i].low;
    Edge h1, h0, l1, l0;
    if (varOf(h) == y) {
      h1 = highOf(h);
      h0 = lowOf(h);
    } else {
      h1 = h0 = h;
    }
    if (varOf(lo) == y) {
      l1 = highOf(lo);
      l0 = lowOf(lo);
    } else {
      l1 = l0 = lo;
    }
    // f = x ? h : lo  ==  y ? (x ? h1 : l1) : (x ? h0 : l0).
    const Edge a = swapMkNode(x, h1, l1);
    edgeRef(a);
    const Edge b = swapMkNode(x, h0, l0);
    edgeRef(b);
    // a != b: the node is in the rewrite list, so f depends on y. a is
    // regular: h1 comes from a high edge (see file comment).
    assert(a != b);
    assert(!isCompl(a));
    edgeDeref(h);
    edgeDeref(lo);
    // Rewrite in place (re-take the reference: swapMkNode may have grown
    // nodes_) and move the node into y's subtable.
    Node& n = nodes_[i];
    n.var = y;
    n.high = a;
    n.low = b;
    SubTable& sty = subtables_[y];
    const std::size_t slot = subSlot(sty, a, b);
    n.next = sty.buckets[slot];
    sty.buckets[slot] = i;
    ++sty.count;
    if (sty.count > sty.buckets.size()) growSubTable(y);
  }
}

// ---------------------------------------------------------------------------
// Blocks (variable groups)
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> Manager::blockSizes() const {
  std::vector<std::uint32_t> sizes;
  std::size_t l = 0;
  while (l < level2var_.size()) {
    const std::uint32_t g = group_of_var_[level2var_[l]];
    std::uint32_t len = 1;
    if (g != kNil) {
      // Only a contiguous run of one group id forms a block, so orders that
      // split a group (setVarOrder) degrade to singletons instead of
      // producing bogus blocks.
      while (l + len < level2var_.size() &&
             group_of_var_[level2var_[l + len]] == g) {
        ++len;
      }
    }
    sizes.push_back(len);
    l += len;
  }
  return sizes;
}

void Manager::swapBlockWithNext(std::vector<std::uint32_t>& sizes,
                                unsigned i) {
  // Reordering-boundary interrupt poll: between block swaps every swap
  // sequence is complete, so all swap invariants hold and an Interrupted
  // unwinding from here leaves a consistent (intermediate) order. The
  // public entry points catch it, finalize via reorderDone() and rethrow.
  pollInterrupt();
  unsigned start = 0;
  for (unsigned k = 0; k < i; ++k) start += sizes[k];
  const unsigned sx = sizes[i];
  const unsigned sy = sizes[i + 1];
  // Bubble each variable of block X down through block Y, bottom-most
  // first; relative order inside both blocks is preserved.
  for (unsigned j = 0; j < sx; ++j) {
    const unsigned from = start + sx - 1 - j;
    for (unsigned k = 0; k < sy; ++k) swapRaw(from + k);
  }
  std::swap(sizes[i], sizes[i + 1]);
}

// ---------------------------------------------------------------------------
// Sifting
// ---------------------------------------------------------------------------

void Manager::siftBlock(std::uint32_t top_var) {
  std::vector<std::uint32_t> sizes = blockSizes();
  const int nblocks = static_cast<int>(sizes.size());
  if (nblocks < 2) return;
  int bi = 0;
  {
    const unsigned lv = var2level_[top_var];
    unsigned start = 0;
    while (start + sizes[bi] <= lv) start += sizes[bi++];
  }
  const std::size_t limit =
      static_cast<std::size_t>(static_cast<double>(in_use_) *
                               cfg_.reorder_max_growth) +
      16;
  std::size_t best = in_use_;
  int best_pos = bi;
  int cur = bi;

  auto sweepDown = [&] {
    while (cur < nblocks - 1) {
      swapBlockWithNext(sizes, static_cast<unsigned>(cur));
      ++cur;
      if (in_use_ < best) {
        best = in_use_;
        best_pos = cur;
      }
      if (in_use_ > limit) break;
    }
  };
  auto sweepUp = [&] {
    while (cur > 0) {
      swapBlockWithNext(sizes, static_cast<unsigned>(cur - 1));
      --cur;
      if (in_use_ < best) {
        best = in_use_;
        best_pos = cur;
      }
      if (in_use_ > limit) break;
    }
  };

  // Explore the nearer end first — fewer swaps before the first abort test.
  if (nblocks - 1 - bi <= bi) {
    sweepDown();
    sweepUp();
  } else {
    sweepUp();
    sweepDown();
  }
  // Settle on the best position seen (the start position if nothing beat
  // it — sizes under a given order are canonical, so retracing restores the
  // exact count).
  while (cur < best_pos) {
    swapBlockWithNext(sizes, static_cast<unsigned>(cur));
    ++cur;
  }
  while (cur > best_pos) {
    swapBlockWithNext(sizes, static_cast<unsigned>(cur - 1));
    --cur;
  }
}

void Manager::siftPass() {
  // One entry per block, identified by its top variable (stable: block
  // members never change relative order). Sift big levels first.
  struct BlockEntry {
    std::uint32_t top_var;
    std::size_t nodes;
  };
  std::vector<BlockEntry> order;
  {
    const std::vector<std::uint32_t> sizes = blockSizes();
    std::size_t l = 0;
    for (const std::uint32_t sz : sizes) {
      std::size_t n = 0;
      for (std::uint32_t k = 0; k < sz; ++k) {
        n += subtables_[level2var_[l + k]].count;
      }
      order.push_back({level2var_[l], n});
      l += sz;
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const BlockEntry& a, const BlockEntry& b) {
                     return a.nodes > b.nodes;
                   });
  for (const BlockEntry& e : order) {
    if (e.nodes == 0) continue;  // empty level: moving it cannot help
    siftBlock(e.top_var);
  }
}

// ---------------------------------------------------------------------------
// Window permutation
// ---------------------------------------------------------------------------

void Manager::windowPass(unsigned window) {
  std::vector<std::uint32_t> sizes = blockSizes();
  const int nblocks = static_cast<int>(sizes.size());
  if (window == 2) {
    for (int i = 0; i + 1 < nblocks; ++i) {
      const std::size_t before = in_use_;
      swapBlockWithNext(sizes, static_cast<unsigned>(i));
      if (in_use_ >= before) {
        swapBlockWithNext(sizes, static_cast<unsigned>(i));  // revert
      }
    }
    return;
  }
  for (int i = 0; i + 2 < nblocks; ++i) {
    // Alternating adjacent swaps s1 = (i, i+1), s2 = (i+1, i+2) cycle
    // through all 6 permutations of three blocks with period 6 (swap k is
    // s1 for odd k, s2 for even k). Visit states 1..5, then continue the
    // cycle until the best state recurs.
    std::size_t best = in_use_;
    int best_state = 0;
    for (int k = 1; k <= 5; ++k) {
      swapBlockWithNext(sizes, static_cast<unsigned>(k % 2 == 1 ? i : i + 1));
      if (in_use_ < best) {
        best = in_use_;
        best_state = k;
      }
    }
    const int extra = (best_state + 1) % 6;  // from state 5 back to best
    for (int t = 0; t < extra; ++t) {
      const int k = 6 + t;
      swapBlockWithNext(sizes, static_cast<unsigned>(k % 2 == 1 ? i : i + 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

void Manager::reorder(ReorderMethod method) {
  if (reordering_ || num_vars_ < 2) return;
  // The prologue GC emits its own kGc event; the kReorder event measures
  // the reordering proper (post-GC size to post-reorder size).
  reorderPrologue();
  const Timer timer;
  const std::size_t before = in_use_;
  try {
    switch (method) {
      case ReorderMethod::kSift:
        siftPass();
        break;
      case ReorderMethod::kSiftConverge: {
        std::size_t prev = in_use_;
        for (int round = 0; round < 8; ++round) {
          siftPass();
          if (in_use_ >= prev) break;
          prev = in_use_;
        }
        break;
      }
      case ReorderMethod::kWindow2:
        windowPass(2);
        break;
      case ReorderMethod::kWindow3:
        windowPass(3);
        break;
    }
  } catch (...) {
    // Interrupted mid-pass: the order is an arbitrary but consistent
    // intermediate permutation and every handle still denotes its function.
    // Finalize the transient refcount mode, skip the completed-run stats
    // and the kReorder event, and let the interrupt unwind.
    reorderDone();
    throw;
  }
  reorderDone();
  ++stats_.reorder_runs;
  if (in_use_ < before) stats_.reorder_nodes_saved += before - in_use_;
  // Schedule the next automatic run at a geometric multiple of the current
  // size; back off harder when this run saved less than 10%.
  std::size_t next = std::max<std::size_t>(
      cfg_.reorder_threshold,
      static_cast<std::size_t>(static_cast<double>(in_use_) *
                               cfg_.reorder_growth));
  if (in_use_ * 10 > before * 9) next = std::max(next, before * 2);
  next_reorder_at_ = next;
  emitEvent(ManagerEvent::Kind::kReorder, before, in_use_, timer.seconds());
}

void Manager::swapLevels(unsigned level) {
  if (level + 1 >= level2var_.size()) {
    throw std::out_of_range("swapLevels: level out of range");
  }
  if (reordering_) {
    throw std::logic_error("swapLevels: reordering already in progress");
  }
  reorderPrologue();
  swapRaw(level);
  reorderDone();
}

void Manager::setVarOrder(std::span<const unsigned> order) {
  if (order.size() != num_vars_) {
    throw std::invalid_argument("setVarOrder: order size != numVars()");
  }
  std::vector<bool> seen(num_vars_, false);
  for (const unsigned v : order) {
    if (v >= num_vars_ || seen[v]) {
      throw std::invalid_argument("setVarOrder: not a permutation");
    }
    seen[v] = true;
  }
  if (reordering_) {
    throw std::logic_error("setVarOrder: reordering already in progress");
  }
  if (num_vars_ < 2) return;
  reorderPrologue();
  // Selection sort by adjacent swaps: bubble order[l] up to level l. Note
  // that an explicit total order overrides group bindings.
  for (unsigned l = 0; l < num_vars_; ++l) {
    for (unsigned cur = var2level_[order[l]]; cur > l; --cur) {
      swapRaw(cur - 1);
    }
  }
  reorderDone();
}

std::vector<unsigned> Manager::currentOrder() const {
  return {level2var_.begin(), level2var_.end()};
}

void Manager::bindVarGroup(std::span<const unsigned> vars) {
  if (vars.size() < 2) return;
  std::vector<unsigned> levels;
  levels.reserve(vars.size());
  for (const unsigned v : vars) {
    if (v >= num_vars_) {
      throw std::invalid_argument("bindVarGroup: unknown variable");
    }
    levels.push_back(var2level_[v]);
  }
  std::sort(levels.begin(), levels.end());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    if (levels[i] != levels[i - 1] + 1) {
      throw std::invalid_argument(
          "bindVarGroup: variables must sit at adjacent levels");
    }
  }
  const std::uint32_t g = next_group_++;
  for (const unsigned v : vars) group_of_var_[v] = g;
}

void Manager::clearVarGroups() {
  std::fill(group_of_var_.begin(), group_of_var_.end(), kNil);
}

}  // namespace bfvr::bdd
