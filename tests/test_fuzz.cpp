// Randomized cross-cutting sweeps: wider BFV algebra, netlist round-trip
// fuzzing, and algebraic laws chained across many operations.
#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "reach/engine.hpp"
#include "support/brute.hpp"

namespace bfvr {
namespace {

using bfv::Bfv;
using test::Set;

class WideBfvSweep : public ::testing::TestWithParam<int> {};

TEST_P(WideBfvSweep, Width6AlgebraMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 17);
  const unsigned n = 6;
  std::vector<unsigned> vars(n);
  for (unsigned i = 0; i < n; ++i) vars[i] = i;
  bdd::Manager m(n);
  const Set a = test::randomSet(rng, n, 1, 4);
  const Set b = test::randomSet(rng, n, 1, 4);
  const Set c = test::randomSet(rng, n, 1, 4);
  const Bfv fa = test::bfvOf(m, vars, a);
  const Bfv fb = test::bfvOf(m, vars, b);
  const Bfv fc = test::bfvOf(m, vars, c);
  // Union / intersection against brute force.
  EXPECT_EQ(test::setOf(setUnion(fa, fb)), test::setUnionOf(a, b));
  const Set i_ab = test::setIntersectOf(a, b);
  const Bfv fi = setIntersect(fa, fb);
  EXPECT_EQ(fi.isEmpty() ? Set{} : test::setOf(fi), i_ab);
  // Distributivity: A & (B | C) == (A & B) | (A & C).
  const Bfv lhs = setIntersect(fa, setUnion(fb, fc));
  const Bfv rhs = setUnion(setIntersect(fa, fb), setIntersect(fa, fc));
  EXPECT_EQ(lhs, rhs);
  // De-Morgan-free absorption: A | (A & B) == A.
  EXPECT_EQ(setUnion(fa, setIntersect(fa, fb)), fa);
  // chi round trip at width 6.
  if (!a.empty()) {
    EXPECT_EQ(bfv::fromChar(m, fa.toChar(), vars), fa);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideBfvSweep, ::testing::Range(0, 20));

class NetlistFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NetlistFuzz, BenchRoundTripPreservesSimulation) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 31 + 5);
  const circuit::Netlist n = circuit::makeRandomSeq(
      3 + static_cast<unsigned>(rng.below(8)),
      1 + static_cast<unsigned>(rng.below(5)),
      15 + static_cast<unsigned>(rng.below(60)), seed);
  const circuit::Netlist back =
      circuit::parseBenchString(circuit::toBench(n), "rt");
  ASSERT_EQ(back.latches().size(), n.latches().size());
  ASSERT_EQ(back.inputs().size(), n.inputs().size());
  const circuit::ConcreteSim s1(n);
  const circuit::ConcreteSim s2(back);
  // Initial values are not part of .bench (ISCAS89 DFFs reset to 0), so
  // compare step functions from random states instead of from init.
  const std::size_t nl = n.latches().size();
  const std::size_t ni = n.inputs().size();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> st(nl);
    std::vector<bool> in(ni);
    for (std::size_t i = 0; i < nl; ++i) st[i] = rng.flip();
    for (std::size_t i = 0; i < ni; ++i) in[i] = rng.flip();
    EXPECT_EQ(s1.step(st, in), s2.step(st, in));
    EXPECT_EQ(s1.outputs(st, in), s2.outputs(st, in));
  }
}

TEST_P(NetlistFuzz, SymbolicAndExplicitReachAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const circuit::Netlist n = circuit::makeRandomSeq(7, 3, 35, seed + 1000);
  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  bdd::Manager m(0);
  sym::StateSpace s(
      m, n, circuit::makeOrder(n, {circuit::OrderKind::kRandom, seed}));
  reach::ReachOptions opts;
  opts.max_iterations = 4000;
  const reach::ReachResult r = reach::reachBfv(s, opts);
  ASSERT_EQ(r.status, RunStatus::kDone);
  EXPECT_DOUBLE_EQ(r.states, static_cast<double>(oracle->size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz, ::testing::Range(0, 15));

TEST(ChainedOps, LongRandomOperationChainsStayCanonical) {
  // 200 random set operations; the pool is tracked against brute force.
  const unsigned n = 5;
  std::vector<unsigned> vars(n);
  for (unsigned i = 0; i < n; ++i) vars[i] = i;
  bdd::Manager m(n);
  Rng rng(99);
  std::vector<Bfv> pool;
  std::vector<Set> model;
  for (int i = 0; i < 6; ++i) {
    Set s = test::randomSet(rng, n, 1, 3);
    model.push_back(s);
    pool.push_back(test::bfvOf(m, vars, s));
  }
  for (int step = 0; step < 200; ++step) {
    const std::size_t i = rng.below(pool.size());
    const std::size_t j = rng.below(pool.size());
    if (rng.flip()) {
      pool[i] = setUnion(pool[i], pool[j]);
      model[i] = test::setUnionOf(model[i], model[j]);
    } else {
      pool[i] = setIntersect(pool[i], pool[j]);
      model[i] = test::setIntersectOf(model[i], model[j]);
    }
    if (step % 41 == 0) m.gc();
    if (step % 23 == 0) {
      ASSERT_EQ(pool[i].isEmpty() ? Set{} : test::setOf(pool[i]), model[i])
          << "step " << step;
      ASSERT_TRUE(pool[i].checkCanonical());
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(pool[i].isEmpty() ? Set{} : test::setOf(pool[i]), model[i]);
  }
}

}  // namespace
}  // namespace bfvr
