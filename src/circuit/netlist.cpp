#include "circuit/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace bfvr::circuit {

bool isSource(GateOp op) noexcept {
  return op == GateOp::kInput || op == GateOp::kLatch ||
         op == GateOp::kConst0 || op == GateOp::kConst1;
}

bool evalGate(GateOp op, const std::vector<bool>& values) {
  auto reduceAnd = [&] {
    for (bool v : values) {
      if (!v) return false;
    }
    return true;
  };
  auto reduceOr = [&] {
    for (bool v : values) {
      if (v) return true;
    }
    return false;
  };
  auto reduceXor = [&] {
    bool acc = false;
    for (bool v : values) acc ^= v;
    return acc;
  };
  switch (op) {
    case GateOp::kConst0:
      return false;
    case GateOp::kConst1:
      return true;
    case GateOp::kBuf:
      return values.at(0);
    case GateOp::kNot:
      return !values.at(0);
    case GateOp::kAnd:
      return reduceAnd();
    case GateOp::kNand:
      return !reduceAnd();
    case GateOp::kOr:
      return reduceOr();
    case GateOp::kNor:
      return !reduceOr();
    case GateOp::kXor:
      return reduceXor();
    case GateOp::kXnor:
      return !reduceXor();
    case GateOp::kInput:
    case GateOp::kLatch:
      throw std::logic_error("evalGate on a source signal");
  }
  throw std::logic_error("evalGate: bad op");
}

SignalId Netlist::add(Gate g) {
  if (g.name.empty()) {
    g.name = "_n" + std::to_string(anon_counter_++);
  }
  if (by_name_.contains(g.name)) {
    throw std::invalid_argument("duplicate signal name: " + g.name);
  }
  const SignalId id = static_cast<SignalId>(gates_.size());
  by_name_.emplace(g.name, id);
  gates_.push_back(std::move(g));
  return id;
}

SignalId Netlist::addInput(const std::string& name) {
  const SignalId id = add(Gate{GateOp::kInput, {}, name});
  inputs_.push_back(id);
  return id;
}

SignalId Netlist::addConst(bool value, const std::string& name) {
  return add(Gate{value ? GateOp::kConst1 : GateOp::kConst0, {}, name});
}

SignalId Netlist::addGate(GateOp op, std::vector<SignalId> fanins,
                          const std::string& name) {
  if (isSource(op)) {
    throw std::invalid_argument("addGate cannot create source signals");
  }
  const std::size_t arity = fanins.size();
  const bool unary = op == GateOp::kBuf || op == GateOp::kNot;
  if ((unary && arity != 1) || (!unary && arity < 1)) {
    throw std::invalid_argument("bad fanin arity for gate " + name);
  }
  for (SignalId f : fanins) {
    if (f >= gates_.size()) {
      throw std::invalid_argument("gate " + name + " references unknown fanin");
    }
  }
  return add(Gate{op, std::move(fanins), name});
}

SignalId Netlist::addLatch(const std::string& name, bool init_value) {
  const SignalId id = add(Gate{GateOp::kLatch, {}, name});
  latches_.push_back(id);
  latch_init_.push_back(init_value);
  return id;
}

void Netlist::setLatchData(SignalId latch, SignalId data) {
  Gate& g = gates_.at(latch);
  if (g.op != GateOp::kLatch) {
    throw std::invalid_argument("setLatchData on a non-latch signal");
  }
  if (data >= gates_.size()) {
    throw std::invalid_argument("latch data references unknown signal");
  }
  g.fanins.assign(1, data);
}

void Netlist::markOutput(SignalId sig, const std::string& name) {
  (void)name;
  if (sig >= gates_.size()) {
    throw std::invalid_argument("markOutput: unknown signal");
  }
  outputs_.push_back(sig);
}

SignalId Netlist::mkAnd(SignalId a, SignalId b, const std::string& name) {
  return addGate(GateOp::kAnd, {a, b}, name);
}
SignalId Netlist::mkOr(SignalId a, SignalId b, const std::string& name) {
  return addGate(GateOp::kOr, {a, b}, name);
}
SignalId Netlist::mkXor(SignalId a, SignalId b, const std::string& name) {
  return addGate(GateOp::kXor, {a, b}, name);
}
SignalId Netlist::mkNot(SignalId a, const std::string& name) {
  return addGate(GateOp::kNot, {a}, name);
}
SignalId Netlist::mkMux(SignalId s, SignalId a, SignalId b,
                        const std::string& name) {
  const SignalId t = mkAnd(s, a);
  const SignalId e = addGate(GateOp::kAnd, {mkNot(s), b}, "");
  return addGate(GateOp::kOr, {t, e}, name);
}

std::size_t Netlist::latchPos(SignalId sig) const {
  const auto it = std::find(latches_.begin(), latches_.end(), sig);
  if (it == latches_.end()) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - latches_.begin());
}

SignalId Netlist::latchData(std::size_t latch_pos) const {
  const Gate& g = gates_.at(latches_.at(latch_pos));
  if (g.fanins.empty()) {
    throw std::logic_error("latch " + g.name + " has no data input");
  }
  return g.fanins[0];
}

SignalId Netlist::signal(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::invalid_argument("unknown signal: " + name);
  }
  return it->second;
}

std::vector<SignalId> Netlist::topoOrder() const {
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(gates_.size(), kWhite);
  std::vector<SignalId> order;
  order.reserve(gates_.size());
  // Iterative DFS (post-order) over combinational fanin.
  std::vector<std::pair<SignalId, std::size_t>> stack;
  auto visit = [&](SignalId root) {
    if (color[root] != kWhite) return;
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Gate& g = gates_[id];
      const bool source = isSource(g.op);
      if (source || next >= g.fanins.size()) {
        color[id] = kBlack;
        order.push_back(id);
        stack.pop_back();
        continue;
      }
      const SignalId f = g.fanins[next++];
      if (color[f] == kGray) {
        throw std::logic_error("combinational cycle through " + gates_[f].name);
      }
      if (color[f] == kWhite) {
        color[f] = kGray;
        stack.emplace_back(f, 0);
      }
    }
  };
  // Roots: latch data inputs and primary outputs (plus every gate, so that
  // dangling logic is still simulatable).
  for (std::size_t p = 0; p < latches_.size(); ++p) visit(latchData(p));
  for (SignalId o : outputs_) visit(o);
  for (SignalId id = 0; id < gates_.size(); ++id) visit(id);
  return order;
}

void Netlist::validate() const {
  for (std::size_t p = 0; p < latches_.size(); ++p) {
    (void)latchData(p);  // throws when a latch loop was never closed
  }
  (void)topoOrder();  // throws on combinational cycles
}

std::vector<SignalId> Netlist::faninCone(
    const std::vector<SignalId>& roots) const {
  std::vector<bool> seen(gates_.size(), false);
  std::vector<SignalId> stack(roots.begin(), roots.end());
  std::vector<SignalId> sources;
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    const Gate& g = gates_[id];
    if (g.op == GateOp::kInput || g.op == GateOp::kLatch) {
      sources.push_back(id);
      continue;  // stop at sequential boundary
    }
    for (SignalId f : g.fanins) stack.push_back(f);
  }
  return sources;
}

}  // namespace bfvr::circuit
