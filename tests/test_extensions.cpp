// The hybrid split/conjoin engine, search-based ordering, and the newer
// generator circuits.
#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <set>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "reach/engine.hpp"
#include "sym/ordersearch.hpp"

namespace bfvr {
namespace {

using circuit::Netlist;
using circuit::OrderKind;

class HybridMatrix : public ::testing::TestWithParam<int> {};

TEST_P(HybridMatrix, AgreesWithOracle) {
  const int idx = GetParam();
  Netlist n = [&] {
    switch (idx) {
      case 0:
        return circuit::makeCounter(4, 13);
      case 1:
        return circuit::makeJohnson(5);
      case 2:
        return circuit::makeTwinShift(4);
      case 3:
        return circuit::makeFifoCtrl(2);
      case 4:
        return circuit::makeGrayCounter(4);
      default:
        return circuit::makeRandomSeq(6, 3, 30,
                                      static_cast<std::uint64_t>(idx));
    }
  }();
  const auto oracle = circuit::explicitReach(n);
  ASSERT_TRUE(oracle.has_value());
  for (const OrderKind kind :
       {OrderKind::kTopo, OrderKind::kNatural, OrderKind::kReverse}) {
    bdd::Manager m(0);
    sym::StateSpace s(m, n, circuit::makeOrder(n, {kind, 2}));
    reach::ReachOptions opts;
    opts.max_iterations = 2000;
    const reach::ReachResult r = reach::reachHybrid(s, opts);
    ASSERT_EQ(r.status, RunStatus::kDone);
    EXPECT_DOUBLE_EQ(r.states, static_cast<double>(oracle->size()))
        << n.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, HybridMatrix, ::testing::Range(0, 7));

TEST(Hybrid, MatchesTrEngineExactly) {
  const Netlist n = circuit::makeFifoCtrl(3);
  bdd::Manager m1(0);
  sym::StateSpace s1(m1, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  bdd::Manager m2(0);
  sym::StateSpace s2(m2, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const reach::ReachResult a = reach::reachTr(s1, {});
  const reach::ReachResult b = reach::reachHybrid(s2, {});
  EXPECT_DOUBLE_EQ(a.states, b.states);
  EXPECT_EQ(a.chi_nodes, b.chi_nodes);
}

TEST(OrderSearch, NeverWorsensTheCost) {
  for (const Netlist& n :
       {circuit::makeTwinShift(5), circuit::makeFifoCtrl(2),
        circuit::makeRandomSeq(8, 3, 40, 5)}) {
    const auto start = circuit::makeOrder(n, {OrderKind::kReverse, 0});
    const std::size_t before = sym::orderCost(n, start, 1U << 22);
    sym::OrderSearchOptions opts;
    opts.passes = 2;
    const auto found = sym::searchOrder(n, start, opts);
    const std::size_t after = sym::orderCost(n, found, 1U << 22);
    EXPECT_LE(after, before) << n.name();
    // The result is still a valid order (StateSpace accepts it).
    bdd::Manager m(0);
    EXPECT_NO_THROW(sym::StateSpace(m, n, found));
  }
}

TEST(OrderSearch, ImprovesABadRandomOrder) {
  // A random order on the FIFO controller scatters the pointer/counter
  // bits; one hill-climbing pass must find something strictly better.
  const Netlist n = circuit::makeFifoCtrl(3);
  const auto start = circuit::makeOrder(n, {OrderKind::kRandom, 3});
  const std::size_t before = sym::orderCost(n, start, 1U << 22);
  const auto found = sym::searchOrder(n, start, {});
  const std::size_t after = sym::orderCost(n, found, 1U << 22);
  EXPECT_LT(after, before);
}

TEST(OrderSearch, RespectsEvaluationBudget) {
  const Netlist n = circuit::makeTwinShift(6);
  const auto order = circuit::makeOrder(n, {OrderKind::kNatural, 0});
  EXPECT_EQ(sym::orderCost(n, order, 2),
            std::numeric_limits<std::size_t>::max());
}

class GraySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(GraySweep, CountsAllStatesOneBitAtATime) {
  const unsigned bits = GetParam();
  const Netlist n = circuit::makeGrayCounter(bits);
  const circuit::ConcreteSim sim(n);
  std::vector<bool> s = sim.initialState();
  std::set<std::uint64_t> seen;
  auto pack = [&] {
    std::uint64_t x = 0;
    for (unsigned i = 0; i < bits; ++i) {
      if (s[i]) x |= std::uint64_t{1} << i;
    }
    return x;
  };
  seen.insert(pack());
  for (unsigned step = 0; step < (1U << bits); ++step) {
    const std::uint64_t before = pack();
    s = sim.step(s, {true});
    const std::uint64_t after = pack();
    EXPECT_EQ(std::popcount(before ^ after), 1) << "not a Gray transition";
    seen.insert(after);
  }
  EXPECT_EQ(seen.size(), std::size_t{1} << bits);  // full cycle
  // Disabled: holds.
  EXPECT_EQ(sim.step(s, {false}), s);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraySweep, ::testing::Values(2U, 3U, 4U, 6U));

class CrcSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrcSweep, AllStatesReachableWithShortDiameter) {
  const unsigned bits = GetParam();
  const Netlist n = circuit::makeCrc(bits);
  const auto r = circuit::explicitReach(n);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), std::size_t{1} << bits);
  // Symbolic check: BFS depth is exactly `bits` (a shift register is fully
  // controllable through its serial input).
  bdd::Manager m(0);
  sym::StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const reach::ReachResult rr = reach::reachBfv(s, {});
  EXPECT_EQ(rr.status, RunStatus::kDone);
  EXPECT_DOUBLE_EQ(rr.states, static_cast<double>(std::size_t{1} << bits));
  EXPECT_LE(rr.iterations, bits + 1U);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrcSweep, ::testing::Values(3U, 4U, 5U, 8U));

TEST(Generators, GrayAndCrcValidateParameters) {
  EXPECT_THROW((void)circuit::makeGrayCounter(1), std::invalid_argument);
  EXPECT_THROW((void)circuit::makeCrc(13), std::invalid_argument);
}

}  // namespace
}  // namespace bfvr
