file(REMOVE_RECURSE
  "CMakeFiles/bench_setops.dir/bench_setops.cpp.o"
  "CMakeFiles/bench_setops.dir/bench_setops.cpp.o.d"
  "bench_setops"
  "bench_setops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
