file(REMOVE_RECURSE
  "CMakeFiles/arbiter_reachability.dir/arbiter_reachability.cpp.o"
  "CMakeFiles/arbiter_reachability.dir/arbiter_reachability.cpp.o.d"
  "arbiter_reachability"
  "arbiter_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
