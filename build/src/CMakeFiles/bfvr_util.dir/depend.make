# Empty dependencies file for bfvr_util.
# This may be replaced when dependencies are built.
