// Common interface of the three reachability engines:
//
//  * TrReach  — characteristic-function flow with (partitioned) transition
//               relations and IWLS95-style early quantification: the VIS
//               baseline of Table 2.
//  * CbmReach — the Coudert/Berthet/Madre flow of Fig. 1: symbolic
//               simulation for images, but every set operation on the
//               characteristic function, paying the BFV<->chi conversions.
//  * BfvReach — the paper's flow of Fig. 2: symbolic simulation,
//               re-parameterization and set union directly on Boolean
//               functional vectors (or their conjunctive decomposition).
//
// All engines run under a time/node budget and report the paper's metrics:
// wall-clock seconds and peak live BDD nodes, plus iteration counts and the
// size of the final reached set in both representations.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "bfv/bfv.hpp"
#include "cdec/cdec.hpp"
#include "obs/obs.hpp"
#include "sym/space.hpp"
#include "sym/transition.hpp"
#include "util/stats.hpp"

namespace bfvr::reach {

using bdd::Bdd;
using bdd::Manager;
using bfv::Bfv;

/// Which set-algebra backend the Fig. 2 engine uses (§2.7: with matching
/// component/BDD orders the conjunctive decomposition needs fewer BDD
/// operations).
enum class SetBackend : std::uint8_t { kBfv, kCdec };

/// Dynamic-reordering policy for a reachability run. Works alongside the
/// manager's own Config::auto_reorder trigger: `every = k` additionally
/// sifts after every k-th frontier iteration (0 = never).
struct ReorderPolicy {
  unsigned every = 0;
  bdd::ReorderMethod method = bdd::ReorderMethod::kSift;
  /// Bind each latch's interleaved (current, param) index pair as a reorder
  /// group, so any reordering — stepwise or automatic — keeps the banks
  /// interleaved and the u -> v renaming order-preserving.
  bool group_state_pairs = true;
};

/// Mid-run state decoded from a checkpoint file (io::load, resumeReach).
/// Engines read it as "the loop already completed `iteration` frontier
/// steps with this reached set and this frontier" and continue from there.
/// Exactly one representation is populated, matching the engine that wrote
/// the checkpoint.
struct ResumePoint {
  unsigned iteration = 0;
  Bdd reached_chi;  ///< TR/CBM/hybrid engines
  Bdd from_chi;
  std::optional<Bfv> reached_bfv, from_bfv;        ///< kBfv backend
  std::optional<cdec::Cdec> reached_cdec, from_cdec;  ///< kCdec backend
};

struct ReachOptions {
  Budget budget;
  /// Selection heuristic (Fig. 1/2 "Selection Heuristic" box): simulate
  /// from the smaller of the new image and the reached set. When false,
  /// always simulate from the full reached set.
  bool use_frontier = true;
  /// Re-parameterization quantification schedule (BFV/CDEC engines).
  bfv::ReparamOptions reparam;
  /// Set algebra of the Fig. 2 engine.
  SetBackend backend = SetBackend::kBfv;
  /// Transition-relation clustering (TR engine).
  sym::TransitionOptions transition;
  /// Cap on iterations (0 = until fixpoint); a safety net for tests.
  unsigned max_iterations = 0;
  /// Dynamic variable reordering between frontier steps.
  ReorderPolicy reorder;
  /// Record a per-iteration obs::RunTrace (frontier size, phase split, node
  /// census, op deltas, manager events) into ReachResult::trace. Off by
  /// default: tracing adds a live-node census and a state count per
  /// iteration, which untraced runs must not pay.
  bool trace = false;
  /// Per-iteration streaming hook: invoked right after every completed
  /// frontier iteration with that iteration's record — the serving layer
  /// forwards these to clients as the run progresses. Independent of
  /// `trace`, but enables the same per-iteration census cost (live-node
  /// count + state count) that tracing pays. The callback runs on the
  /// engine's thread; it must not throw and must not call back into the
  /// manager (exceptions are swallowed defensively).
  std::function<void(const obs::IterationRecord&)> on_iteration;
  /// Snapshot the reached set + frontier to `checkpoint_path` (atomic:
  /// tmp + rename, see io/checkpoint.hpp) after every `checkpoint_every`-th
  /// frontier iteration. 0 or an empty path = never.
  unsigned checkpoint_every = 0;
  std::string checkpoint_path;
  /// Continue from a decoded checkpoint instead of the initial state. Set
  /// by resumeReach(); not owned, must outlive the run.
  const ResumePoint* resume = nullptr;
};

struct ReachResult {
  RunStatus status = RunStatus::kDone;
  /// Why the run did not complete — budget/live nodes for kMemOut, the
  /// time budget or deadline for kTimeOut, the interrupt reason for
  /// kCancelled. Empty for kDone.
  std::string message;
  unsigned iterations = 0;
  double states = 0.0;  ///< number of reachable states (when completed)
  double seconds = 0.0;
  /// Peak live BDD nodes, sampled after every image/union step (the
  /// paper's Peak(K) metric).
  std::size_t peak_live_nodes = 0;
  /// Node count of the reached set's characteristic function (TR/CBM
  /// engines compute it anyway; BFV engines convert once at the end —
  /// outside the measured peak — for Table 3).
  std::size_t chi_nodes = 0;
  /// Shared node count of the reached set's functional vector.
  std::size_t bfv_nodes = 0;
  /// BDD operation counters accumulated over the run.
  bdd::OpStats ops;

  /// Per-iteration trace, present iff ReachOptions::trace was set. On a
  /// T.O./M.O. run the iteration that tripped the budget has no record;
  /// `iterations` still counts it.
  std::optional<obs::RunTrace> trace;

  /// Reached set, when the run completed (one of the two, per engine).
  std::optional<Bfv> reached_bfv;
  Bdd reached_chi;  // null unless computed
};

/// Characteristic-function engine (VIS-like baseline).
ReachResult reachTr(sym::StateSpace& s, const ReachOptions& opts = {});

/// Coudert/Berthet/Madre Fig. 1 engine.
ReachResult reachCbm(sym::StateSpace& s, const ReachOptions& opts = {});

/// The paper's Fig. 2 engine (BFV or conjunctive-decomposition backend).
ReachResult reachBfv(sym::StateSpace& s, const ReachOptions& opts = {});

/// "To split or to conjoin" (Moon/Kukula/Ravi/Somenzi, cited as the hybrid
/// approach in §1): a characteristic-function engine that picks, per
/// iteration, between the transition-relation image (conjoin) and the
/// recursive-splitting transition-function image (split), based on the
/// size of the from-set relative to the relation.
ReachResult reachHybrid(sym::StateSpace& s, const ReachOptions& opts = {});

/// Restart a checkpointed run: load `checkpoint_path` into the state
/// space's manager (restoring the recorded variable order), rebuild the
/// reached set and frontier, and continue the fixpoint with the engine that
/// wrote the file. The state space must be built over the same circuit and
/// initial order as the original run (same variable count; the checkpoint
/// carries the order itself). The continued run's states/iterations/status
/// are bit-identical to the uninterrupted run's: the reached-set sequence
/// depends only on the (reached, frontier) pair the file captures exactly.
/// Throws io::Error on a missing/corrupt/mismatched file.
ReachResult resumeReach(sym::StateSpace& s, const std::string& checkpoint_path,
                        const ReachOptions& opts = {});

/// Same restart from an in-memory checkpoint image (the bytes io::encode
/// produces / io::save writes) — the job-migration path of the serving
/// layer, where an evicted job's snapshot travels between workers without
/// touching the filesystem. Throws io::Error on a corrupt/mismatched image.
ReachResult resumeReach(sym::StateSpace& s, std::span<const std::uint8_t> image,
                        const ReachOptions& opts = {});

}  // namespace bfvr::reach
