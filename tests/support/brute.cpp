#include "support/brute.hpp"

#include <stdexcept>

namespace bfvr::test {

Bdd bddFromTruth(Manager& m, const std::vector<unsigned>& vars,
                 std::uint64_t tt) {
  const unsigned k = static_cast<unsigned>(vars.size());
  if (k > 6) throw std::invalid_argument("bddFromTruth: too many variables");
  Bdd f = m.zero();
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << k); ++a) {
    if (((tt >> a) & 1U) == 0) continue;
    Bdd term = m.one();
    for (unsigned j = 0; j < k; ++j) {
      term &= ((a >> j) & 1U) != 0 ? m.var(vars[j]) : ~m.var(vars[j]);
    }
    f |= term;
  }
  return f;
}

std::uint64_t truthOf(Manager& m, const Bdd& f,
                      const std::vector<unsigned>& vars) {
  const unsigned k = static_cast<unsigned>(vars.size());
  if (k > 6) throw std::invalid_argument("truthOf: too many variables");
  std::uint64_t tt = 0;
  std::vector<bool> assignment(m.numVars(), false);
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << k); ++a) {
    for (unsigned j = 0; j < k; ++j) {
      assignment[vars[j]] = ((a >> j) & 1U) != 0;
    }
    if (m.eval(f, assignment)) tt |= std::uint64_t{1} << a;
  }
  return tt;
}

std::uint64_t randomTruth(Rng& rng, unsigned k) {
  const unsigned bits = 1U << k;
  std::uint64_t tt = rng.next();
  if (bits < 64) tt &= (std::uint64_t{1} << bits) - 1;
  return tt;
}

Bfv bfvOf(Manager& m, const std::vector<unsigned>& vars, const Set& s) {
  const std::vector<std::uint64_t> members(s.begin(), s.end());
  return Bfv::fromMembers(m, vars, members);
}

Set setOf(const Bfv& f) {
  Set s;
  for (const std::vector<bool>& bits : f.enumerate(std::size_t{1} << 22)) {
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) x |= std::uint64_t{1} << i;
    }
    s.insert(x);
  }
  return s;
}

Set randomSet(Rng& rng, unsigned n, std::uint64_t num, std::uint64_t den) {
  Set s;
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
    if (rng.chance(num, den)) s.insert(x);
  }
  return s;
}

std::uint64_t nearestMember(const Set& s, std::uint64_t v, unsigned n) {
  if (s.empty()) throw std::invalid_argument("nearestMember: empty set");
  auto dist = [n](std::uint64_t a, std::uint64_t b) {
    std::uint64_t d = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (((a >> i) & 1U) != ((b >> i) & 1U)) {
        d += std::uint64_t{1} << (n - 1 - i);
      }
    }
    return d;
  };
  std::uint64_t best = *s.begin();
  std::uint64_t bd = dist(v, best);
  for (std::uint64_t x : s) {
    const std::uint64_t d = dist(v, x);
    if (d < bd) {
      bd = d;
      best = x;
    }
  }
  return best;
}

Set setUnionOf(const Set& a, const Set& b) {
  Set r = a;
  r.insert(b.begin(), b.end());
  return r;
}

Set setIntersectOf(const Set& a, const Set& b) {
  Set r;
  for (std::uint64_t x : a) {
    if (b.contains(x)) r.insert(x);
  }
  return r;
}

}  // namespace bfvr::test
