#include "svc/protocol.hpp"

namespace bfvr::svc {

namespace {

/// Decode preamble shared by every message: check the frame type, hand back
/// a bounds-checked reader over the payload.
Reader open(const Frame& f, FrameType want) {
  if (f.type != want) {
    throw Error(std::string("protocol: expected ") + to_string(want) +
                " frame, got " + to_string(f.type));
  }
  return Reader(f.payload);
}

bool readBool(Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) throw Error("protocol: boolean field out of range");
  return v != 0;
}

}  // namespace

Frame Hello::encode() const {
  Writer w;
  w.str(tenant);
  w.u8(proto);
  return {FrameType::kHello, std::move(w.buf)};
}
Hello Hello::decode(const Frame& f) {
  Reader r = open(f, FrameType::kHello);
  Hello m;
  m.tenant = r.str();
  m.proto = r.u8();
  r.done();
  return m;
}

Frame HelloAck::encode() const {
  Writer w;
  w.u64(session);
  w.str(server);
  return {FrameType::kHelloAck, std::move(w.buf)};
}
HelloAck HelloAck::decode(const Frame& f) {
  Reader r = open(f, FrameType::kHelloAck);
  HelloAck m;
  m.session = r.u64();
  m.server = r.str();
  r.done();
  return m;
}

Frame Submit::encode() const {
  Writer w;
  w.u64(tag);
  w.str(line);
  w.str(idem);
  return {FrameType::kSubmit, std::move(w.buf)};
}
Submit Submit::decode(const Frame& f) {
  Reader r = open(f, FrameType::kSubmit);
  Submit m;
  m.tag = r.u64();
  m.line = r.str();
  m.idem = r.str();
  r.done();
  return m;
}

Frame Accepted::encode() const {
  Writer w;
  w.u64(tag);
  w.u64(job);
  w.u64(trace);
  return {FrameType::kAccepted, std::move(w.buf)};
}
Accepted Accepted::decode(const Frame& f) {
  Reader r = open(f, FrameType::kAccepted);
  Accepted m;
  m.tag = r.u64();
  m.job = r.u64();
  m.trace = r.u64();
  r.done();
  return m;
}

Frame Rejected::encode() const {
  Writer w;
  w.u64(tag);
  w.str(reason);
  return {FrameType::kRejected, std::move(w.buf)};
}
Rejected Rejected::decode(const Frame& f) {
  Reader r = open(f, FrameType::kRejected);
  Rejected m;
  m.tag = r.u64();
  m.reason = r.str();
  r.done();
  return m;
}

Frame JobStarted::encode() const {
  Writer w;
  w.u64(job);
  w.u8(resumed ? 1 : 0);
  return {FrameType::kJobStarted, std::move(w.buf)};
}
JobStarted JobStarted::decode(const Frame& f) {
  Reader r = open(f, FrameType::kJobStarted);
  JobStarted m;
  m.job = r.u64();
  m.resumed = readBool(r);
  r.done();
  return m;
}

Frame IterationUpdate::encode() const {
  Writer w;
  w.u64(job);
  w.u64(iteration);
  w.u64(frontier_nodes);
  w.u64(live_nodes);
  w.u64(peak_nodes);
  w.f64(frontier_states);
  return {FrameType::kIteration, std::move(w.buf)};
}
IterationUpdate IterationUpdate::decode(const Frame& f) {
  Reader r = open(f, FrameType::kIteration);
  IterationUpdate m;
  m.job = r.u64();
  m.iteration = r.u64();
  m.frontier_nodes = r.u64();
  m.live_nodes = r.u64();
  m.peak_nodes = r.u64();
  m.frontier_states = r.f64();
  r.done();
  return m;
}

Frame JobEvicted::encode() const {
  Writer w;
  w.u64(job);
  w.u64(iteration);
  w.u32(worker);
  return {FrameType::kJobEvicted, std::move(w.buf)};
}
JobEvicted JobEvicted::decode(const Frame& f) {
  Reader r = open(f, FrameType::kJobEvicted);
  JobEvicted m;
  m.job = r.u64();
  m.iteration = r.u64();
  m.worker = r.u32();
  r.done();
  return m;
}

Frame JobDone::encode() const {
  Writer w;
  w.u64(job);
  w.str(status);
  w.str(message);
  w.f64(seconds);
  w.f64(queue_seconds);
  w.u32(worker);
  w.u64(iterations);
  w.f64(states);
  w.u64(peak_live_nodes);
  w.u32(attempts);
  w.u32(evictions);
  w.u8(resumed ? 1 : 0);
  return {FrameType::kJobDone, std::move(w.buf)};
}
JobDone JobDone::decode(const Frame& f) {
  Reader r = open(f, FrameType::kJobDone);
  JobDone m;
  m.job = r.u64();
  m.status = r.str();
  m.message = r.str();
  m.seconds = r.f64();
  m.queue_seconds = r.f64();
  m.worker = r.u32();
  m.iterations = r.u64();
  m.states = r.f64();
  m.peak_live_nodes = r.u64();
  m.attempts = r.u32();
  m.evictions = r.u32();
  m.resumed = readBool(r);
  r.done();
  return m;
}

Frame Cancel::encode() const {
  Writer w;
  w.u64(job);
  return {FrameType::kCancel, std::move(w.buf)};
}
Cancel Cancel::decode(const Frame& f) {
  Reader r = open(f, FrameType::kCancel);
  Cancel m;
  m.job = r.u64();
  r.done();
  return m;
}

Frame Evict::encode() const {
  Writer w;
  w.u64(job);
  return {FrameType::kEvict, std::move(w.buf)};
}
Evict Evict::decode(const Frame& f) {
  Reader r = open(f, FrameType::kEvict);
  Evict m;
  m.job = r.u64();
  r.done();
  return m;
}

Frame StatsQuery::encode() const {
  Writer w;
  w.u32(flags);
  return {FrameType::kStats, std::move(w.buf)};
}
StatsQuery StatsQuery::decode(const Frame& f) {
  Reader r = open(f, FrameType::kStats);
  StatsQuery m;
  m.flags = r.u32();
  if ((m.flags & ~kAllSections) != 0) {
    throw Error("protocol: unknown stats section flags");
  }
  r.done();
  return m;
}

Frame StatsReply::encode() const {
  Writer w;
  w.str(json);
  return {FrameType::kStatsReply, std::move(w.buf)};
}
StatsReply StatsReply::decode(const Frame& f) {
  Reader r = open(f, FrameType::kStatsReply);
  StatsReply m;
  m.json = r.str();
  r.done();
  return m;
}

Frame Shutdown::encode() const {
  Writer w;
  w.u8(drain ? 1 : 0);
  return {FrameType::kShutdown, std::move(w.buf)};
}
Shutdown Shutdown::decode(const Frame& f) {
  Reader r = open(f, FrameType::kShutdown);
  Shutdown m;
  m.drain = readBool(r);
  r.done();
  return m;
}

Frame Bye::encode() const { return {FrameType::kBye, {}}; }
Bye Bye::decode(const Frame& f) {
  Reader r = open(f, FrameType::kBye);
  r.done();
  return {};
}

Frame WireError::encode() const {
  Writer w;
  w.str(message);
  return {FrameType::kError, std::move(w.buf)};
}
WireError WireError::decode(const Frame& f) {
  Reader r = open(f, FrameType::kError);
  WireError m;
  m.message = r.str();
  r.done();
  return m;
}

}  // namespace bfvr::svc
