// Structured instrumentation for the reachability stack: scoped phase
// timers, per-iteration trace records and a collector for BDD-manager
// lifecycle events (see bdd::EventSink).
//
// The paper's claims are resource-trajectory claims — Table 2/3 compare
// wall-clock and Peak(K) live nodes, and §2.5/§2.7 argue about *where* the
// BDD operations go (reparam vs union vs image). This module is the
// substrate that makes those trajectories visible per iteration instead of
// only as end-of-run aggregates: every engine fills a RunTrace when
// ReachOptions::trace is on, and obs/report.hpp serializes it as JSON (for
// tooling) or an aligned text table (for humans).
//
// Everything here is opt-in: a disabled PhaseTimer::Scope is a null
// pointer, and no trace structure is allocated unless requested.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"

namespace bfvr::obs {

/// The engine phases a reachability iteration is split into. Not every
/// engine exercises every phase (the TR engine never re-parameterizes; only
/// the CBM/CDEC flows pay explicit representation conversions).
enum class Phase : std::uint8_t {
  kImage,    ///< image computation (symbolic simulation / AND-EXISTS chain)
  kReparam,  ///< BFV/CDEC re-parameterization + rename back to current bank
  kUnion,    ///< set union with the reached set
  kCheck,    ///< fixpoint test + frontier selection heuristic
  kConvert,  ///< chi <-> BFV conversions (the Fig. 1 per-iteration cost)
  kOther,    ///< anything an engine wants timed but not split further
};
inline constexpr std::size_t kNumPhases = 6;
const char* to_string(Phase p) noexcept;

/// Seconds accumulated per phase; a plain value type so snapshots and
/// deltas are cheap.
struct PhaseSeconds {
  std::array<double, kNumPhases> seconds{};

  double& operator[](Phase p) noexcept {
    return seconds[static_cast<std::size_t>(p)];
  }
  double operator[](Phase p) const noexcept {
    return seconds[static_cast<std::size_t>(p)];
  }
  double total() const noexcept;
  /// Field-wise difference `this - before` (both from the same timer).
  PhaseSeconds since(const PhaseSeconds& before) const noexcept;
};

/// Nesting-aware scoped phase timer. Time is attributed *exclusively*: when
/// a scope opens inside another, the parent's clock pauses, so the sum of
/// all phase totals never exceeds the wall-clock covered by the scopes.
///
/// Nesting is enforced, not assumed: begin/end pairs must close in strict
/// LIFO order. The manual push()/pop() API throws std::logic_error on an
/// overlap (pop of a phase that is not the innermost open one) or an
/// underflow, instead of silently mis-attributing the interval; the RAII
/// Scope asserts the same invariant in debug builds and recovers (closes
/// whatever is actually innermost) in release, since destructors cannot
/// throw.
class PhaseTimer {
 public:
  /// RAII guard returned by scope(); a Scope holding nullptr is a no-op
  /// (how disabled tracing stays near-zero cost).
  class Scope {
   public:
    explicit Scope(PhaseTimer* t, Phase p = Phase::kOther) noexcept
        : t_(t), p_(p) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (t_ != nullptr) t_->popScope(p_);
    }

   private:
    PhaseTimer* t_;
    Phase p_;
  };

  Scope scope(Phase p) {
    push(p);
    return Scope(this, p);
  }
  void push(Phase p);
  /// Close the innermost scope; throws std::logic_error if none is open.
  void pop();
  /// Close the innermost scope, checking it is `expected`; throws
  /// std::logic_error on an empty stack or an overlapping (non-LIFO) end.
  void pop(Phase expected);

  std::size_t depth() const noexcept { return stack_.size(); }
  /// Accumulated self-time per phase. Within an open scope this excludes
  /// the time since the scope's last mark (closed scopes are fully counted).
  const PhaseSeconds& totals() const noexcept { return totals_; }

 private:
  static double now() noexcept {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Scope-destructor path: noexcept. Asserts the LIFO invariant in debug;
  /// in release closes the actual innermost scope so totals stay bounded.
  void popScope(Phase expected) noexcept;
  void popTopLocked(double t);

  std::vector<Phase> stack_;
  double mark_ = 0.0;  // clock value of the last attribution boundary
  PhaseSeconds totals_;
};

/// One frontier iteration of a reachability engine — the trace record the
/// acceptance tooling keys on. `ops_delta` are the manager counters spent
/// by this iteration; `phase_seconds` its scoped phase split.
struct IterationRecord {
  unsigned iteration = 0;        ///< 1-based, matches ReachResult.iterations
  double frontier_states = 0.0;  ///< states in the set simulated from
  std::size_t frontier_nodes = 0;  ///< (shared) node count of that set
  PhaseSeconds phase_seconds;
  std::size_t live_nodes = 0;  ///< live BDD nodes after the iteration
  std::size_t peak_nodes = 0;  ///< running peak of live samples so far
  bdd::OpStats ops_delta;
};

/// Everything recorded over one engine run. On a T.O./M.O. run the
/// iteration that tripped the budget has no record (it never completed);
/// ReachResult.iterations still counts it.
struct RunTrace {
  std::vector<IterationRecord> iterations;
  std::vector<bdd::ManagerEvent> events;
  PhaseSeconds phase_totals;  ///< timer totals at end of run
};

/// Installs itself as the manager's EventSink for its lifetime, appending
/// every event to `out` and forwarding to the previously installed sink
/// (so nested recorders compose); restores that sink on destruction.
class ScopedEventRecorder final : public bdd::EventSink {
 public:
  ScopedEventRecorder(bdd::Manager& m, std::vector<bdd::ManagerEvent>& out)
      : m_(m), out_(out), prev_(m.eventSink()) {
    m_.setEventSink(this);
  }
  ~ScopedEventRecorder() override { m_.setEventSink(prev_); }
  ScopedEventRecorder(const ScopedEventRecorder&) = delete;
  ScopedEventRecorder& operator=(const ScopedEventRecorder&) = delete;

  void onManagerEvent(const bdd::ManagerEvent& e) override {
    out_.push_back(e);
    if (prev_ != nullptr) prev_->onManagerEvent(e);
  }

 private:
  bdd::Manager& m_;
  std::vector<bdd::ManagerEvent>& out_;
  bdd::EventSink* prev_;
};

}  // namespace bfvr::obs
