// Flight recorder: a fixed-capacity mutex-protected ring of recent
// structured events (admissions, evictions, pressure rungs, retries, wire
// errors). The serving tier records continuously at negligible cost and
// dumps the ring to FLIGHT_<name>.json when something goes wrong — job
// error, injected worker fault, or shutdown — so a post-mortem shows the
// *sequence* that led to the failure, not just the final counters.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bfvr::obs {

enum class FlightSeverity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

const char* to_string(FlightSeverity s);

/// One recorded event. `t` is seconds since the recorder was constructed
/// (monotonic clock), `seq` is a global monotonically increasing sequence
/// number that survives wraparound — dumps order by seq, and gaps prove
/// overwrite.
struct FlightEvent {
  std::uint64_t seq = 0;
  double t = 0.0;
  FlightSeverity severity = FlightSeverity::kInfo;
  std::string category;  ///< "admission", "eviction", "retry", "wire", ...
  std::string message;
  std::string tenant;    ///< empty when not tenant-scoped
  std::uint64_t job = 0; ///< 0 when not job-scoped
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  void record(FlightSeverity severity, const std::string& category,
              const std::string& message, const std::string& tenant = "",
              std::uint64_t job = 0);

  /// Events currently in the ring, oldest first.
  std::vector<FlightEvent> snapshot() const;

  /// Total events ever recorded (>= snapshot().size() after wraparound).
  std::uint64_t totalRecorded() const;
  std::size_t capacity() const { return capacity_; }

  /// The ring as a JSON document: {"reason": ..., "recorded": N,
  /// "capacity": C, "events": [...]} with events oldest first.
  std::string json(const std::string& reason) const;

  /// Write json(reason) to `path`; returns false on I/O failure.
  bool dump(const std::string& path, const std::string& reason) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;  ///< ring_[seq % capacity_]
  std::uint64_t next_seq_ = 0;
  std::uint64_t epoch_ns_ = 0;  ///< steady_clock at construction
};

}  // namespace bfvr::obs
