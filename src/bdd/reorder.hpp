// Dynamic variable reordering (Rudell-style sifting) for the BDD manager.
//
// The manager keeps a level <-> variable indirection: a *variable* is the
// stable identity (what Manager::var(i) hands out and what support(), eval()
// and the composition operators talk about), a *level* is the variable's
// current depth in the shared DAG. Reordering permutes levels only. The
// core primitive is the in-place adjacent-level swap: nodes at the upper
// level are rewritten in place (same node index, same function), so every
// live edge — including raw() values held by higher layers — keeps denoting
// the same function across a reorder; only DAG shape, node counts and
// topVar() results change.
//
// Methods:
//  * kSift          — Rudell sifting: move each variable (or bound group)
//                     through every level, keep the best position; a
//                     direction is abandoned when the table grows past
//                     Config::reorder_max_growth of the start size.
//  * kSiftConverge  — repeat sifting passes until a pass stops shrinking
//                     the table.
//  * kWindow2/3     — exhaustive permutation of every 2/3 adjacent blocks,
//                     kept when strictly smaller.
//
// Groups: bindVarGroup() ties variables at adjacent levels into a block
// that every method moves as a unit. The reach layer binds each latch's
// (current, param) pair so reordering keeps the banks interleaved and the
// u -> v renaming order-preserving.
//
// Automatic reordering (Config::auto_reorder) triggers from maybeGc() — the
// engines' documented safe point — whenever the allocated-node count
// crosses a geometrically growing threshold.
#pragma once

namespace bfvr::bdd {

enum class ReorderMethod : unsigned char {
  kSift,
  kSiftConverge,
  kWindow2,
  kWindow3,
};

/// Short stable tag ("sift", "sift-conv", "window2", "window3") used by the
/// bench harness and its JSON output.
const char* to_string(ReorderMethod m) noexcept;

}  // namespace bfvr::bdd
