// The fixed-size worker pool: a mutex+condvar FIFO of queued jobs, N
// worker threads, one live bdd::Manager per worker at a time (inside
// executeJob). Results travel by future; an optional on_done callback runs
// on the worker thread first, so a portfolio controller can cancel the
// losers the instant a winner concludes.
//
// Fault containment: executeJob is noexcept and every attempt's Manager is
// a stack object inside the attempt, so an interrupted or failed attempt —
// including an allocation failure injected mid-GC by a FaultPlan — always
// releases its manager on scope exit and the worker moves on to the next
// queued job with nothing leaked and nothing poisoned.
#include "run/run.hpp"
#include "util/stats.hpp"

namespace bfvr::run {

struct WorkerPool::Queued {
  JobSpec spec;
  std::shared_ptr<CancelToken> cancel;
  std::function<void(const JobResult&)> on_done;
  std::promise<JobResult> promise;
  Timer queued;  // starts at submit(); read when a worker picks the job up
};

WorkerPool::WorkerPool(unsigned workers) {
  const unsigned n = workers == 0 ? 1 : workers;
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { workerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<JobResult> WorkerPool::submit(
    JobSpec spec, std::shared_ptr<CancelToken> cancel,
    std::function<void(const JobResult&)> on_done) {
  auto q = std::make_unique<Queued>();
  q->spec = std::move(spec);
  q->cancel = std::move(cancel);
  q->on_done = std::move(on_done);
  std::future<JobResult> fut = q->promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      throw std::logic_error("WorkerPool::submit after shutdown");
    }
    queue_.push_back(std::move(q));
  }
  cv_.notify_one();
  return fut;
}

void WorkerPool::workerMain(unsigned index) {
  for (;;) {
    std::unique_ptr<Queued> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain-on-shutdown: pending jobs still run (their tokens can be
      // cancelled for a fast exit); exit only once the queue is empty.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const double waited = job->queued.seconds();
    JobResult r = executeJob(job->spec, job->cancel.get());
    r.queue_seconds = waited;
    r.worker = index;
    if (job->on_done) {
      try {
        job->on_done(r);
      } catch (...) {
        // A misbehaving callback must not take the worker down.
      }
    }
    job->promise.set_value(std::move(r));
  }
}

}  // namespace bfvr::run
