// Admission control and the smooth-WRR fair queue (src/svc/queue): exact
// dispatch interleaving for weighted tenants, concurrency gating, budget
// clamps, queue caps, requeue-after-eviction ordering, and the tenants
// policy-file grammar.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "svc/queue.hpp"
#include "svc/wire.hpp"

namespace bfvr::svc {
namespace {

QueuedJob job(const std::string& tenant, std::uint64_t id,
              std::uint64_t session = 1) {
  QueuedJob j;
  j.id = id;
  j.session = session;
  j.tenant = tenant;
  j.spec.circuit = "gen:counter:3:4";
  return j;
}

std::vector<TenantConfig> threeTenants() {
  return parseTenantsString("alpha:3\nbravo:2\ncarol:1\n");
}

TEST(SvcQueue, SmoothWrrExactSchedule) {
  // Weights 3/2/1 with everyone backlogged: the smooth variant spreads the
  // heavy tenant's picks out — A B A C B A per 6-cycle, not AAA BB C.
  // (Credits: each pick every contender gains its weight, the richest wins
  // and pays back the total; ties break by registration order.)
  FairQueue q(threeTenants());
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_FALSE(q.admit(job("alpha", 100 + i)).has_value());
    ASSERT_FALSE(q.admit(job("bravo", 200 + i)).has_value());
    ASSERT_FALSE(q.admit(job("carol", 300 + i)).has_value());
  }
  std::vector<std::string> order;
  for (int i = 0; i < 12; ++i) {
    std::optional<QueuedJob> j = q.pick();
    ASSERT_TRUE(j.has_value());
    order.push_back(j->tenant);
    q.release(j->tenant);  // pretend it finished immediately
  }
  const std::vector<std::string> expect = {
      "alpha", "bravo", "alpha", "carol", "bravo", "alpha",
      "alpha", "bravo", "alpha", "carol", "bravo", "alpha"};
  EXPECT_EQ(order, expect);
  EXPECT_EQ(q.dispatchLog(), expect);
}

TEST(SvcQueue, WrrSharesConvergeToWeights) {
  FairQueue q(threeTenants());
  for (std::uint64_t i = 0; i < 60; ++i) {
    ASSERT_FALSE(q.admit(job("alpha", 1000 + i)).has_value());
    ASSERT_FALSE(q.admit(job("bravo", 2000 + i)).has_value());
    ASSERT_FALSE(q.admit(job("carol", 3000 + i)).has_value());
  }
  int a = 0, b = 0, c = 0;
  for (int i = 0; i < 60; ++i) {
    std::optional<QueuedJob> j = q.pick();
    ASSERT_TRUE(j.has_value());
    if (j->tenant == "alpha") ++a;
    if (j->tenant == "bravo") ++b;
    if (j->tenant == "carol") ++c;
    q.release(j->tenant);
  }
  EXPECT_EQ(a, 30);
  EXPECT_EQ(b, 20);
  EXPECT_EQ(c, 10);
}

TEST(SvcQueue, PerTenantOrderIsFifo) {
  FairQueue q(parseTenantsString("solo:1"));
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_FALSE(q.admit(job("solo", id)).has_value());
  }
  for (std::uint64_t id = 1; id <= 5; ++id) {
    std::optional<QueuedJob> j = q.pick();
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->id, id);
    q.release("solo");
  }
}

TEST(SvcQueue, MaxRunningGatesDispatch) {
  FairQueue q(parseTenantsString("alpha:3:1\nbravo:1\n"));  // alpha capped at 1
  ASSERT_FALSE(q.admit(job("alpha", 1)).has_value());
  ASSERT_FALSE(q.admit(job("alpha", 2)).has_value());
  ASSERT_FALSE(q.admit(job("bravo", 3)).has_value());
  // First pick: alpha (weight 3) wins and hits its cap.
  std::optional<QueuedJob> first = q.pick();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tenant, "alpha");
  // With alpha at max_running, only bravo contends.
  std::optional<QueuedJob> second = q.pick();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tenant, "bravo");
  // Nothing else is runnable: alpha is capped, bravo's queue is empty.
  EXPECT_FALSE(q.pick().has_value());
  // Releasing alpha's slot frees its second job.
  q.release("alpha");
  std::optional<QueuedJob> third = q.pick();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->id, 2u);
}

TEST(SvcQueue, MaxQueuedRejects) {
  FairQueue q(parseTenantsString("tiny:1:0:2"));
  EXPECT_FALSE(q.admit(job("tiny", 1)).has_value());
  EXPECT_FALSE(q.admit(job("tiny", 2)).has_value());
  const std::optional<std::string> reason = q.admit(job("tiny", 3));
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("queue is full"), std::string::npos);
  EXPECT_EQ(q.queuedCount(), 2u);
}

TEST(SvcQueue, AdmissionClampsBudgetsNeverRaises) {
  FairQueue q(parseTenantsString("capped:1:0:0:5000:2.5"));
  // Job asks for more than the ceiling: clamped down.
  QueuedJob big = job("capped", 1);
  big.spec.opts.budget.max_live_nodes = 1000000;
  big.spec.mgr.max_nodes = 1000000;
  big.spec.deadline_seconds = 100.0;
  ASSERT_FALSE(q.admit(std::move(big)).has_value());
  std::optional<QueuedJob> got = q.pick();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->spec.opts.budget.max_live_nodes, 5000u);
  EXPECT_EQ(got->spec.mgr.max_nodes, 5000u);
  EXPECT_DOUBLE_EQ(got->spec.deadline_seconds, 2.5);
  q.release("capped");
  // Job asks for less: keeps its own tighter numbers.
  QueuedJob small = job("capped", 2);
  small.spec.opts.budget.max_live_nodes = 100;
  small.spec.deadline_seconds = 1.0;
  ASSERT_FALSE(q.admit(std::move(small)).has_value());
  got = q.pick();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->spec.opts.budget.max_live_nodes, 100u);
  EXPECT_DOUBLE_EQ(got->spec.deadline_seconds, 1.0);
  // Job with no budget of its own: the ceiling becomes the budget.
  q.release("capped");
  ASSERT_FALSE(q.admit(job("capped", 3)).has_value());
  got = q.pick();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->spec.opts.budget.max_live_nodes, 5000u);
  EXPECT_DOUBLE_EQ(got->spec.deadline_seconds, 2.5);
}

TEST(SvcQueue, RequeueFrontJumpsTheLine) {
  FairQueue q(parseTenantsString("solo:1"));
  ASSERT_FALSE(q.admit(job("solo", 1)).has_value());
  ASSERT_FALSE(q.admit(job("solo", 2)).has_value());
  QueuedJob evicted = job("solo", 99);
  evicted.evictions = 1;
  q.requeueFront(std::move(evicted));
  std::optional<QueuedJob> next = q.pick();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->id, 99u);  // the evicted job resumes before queued work
}

TEST(SvcQueue, DropSessionAndDropJob) {
  FairQueue q(threeTenants());
  ASSERT_FALSE(q.admit(job("alpha", 1, 7)).has_value());
  ASSERT_FALSE(q.admit(job("alpha", 2, 8)).has_value());
  ASSERT_FALSE(q.admit(job("bravo", 3, 7)).has_value());
  const std::vector<QueuedJob> dropped = q.dropSession(7);
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_EQ(q.queuedCount(), 1u);
  std::optional<QueuedJob> one = q.dropJob(2);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->id, 2u);
  EXPECT_FALSE(q.dropJob(999).has_value());
}

TEST(SvcQueue, UnknownTenantAutoRegisters) {
  FairQueue q;
  ASSERT_FALSE(q.admit(job("walk-in", 1)).has_value());
  std::optional<QueuedJob> j = q.pick();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->tenant, "walk-in");
  const TenantConfig* cfg = q.tenantConfig("walk-in");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->weight, 1u);
}

TEST(SvcQueue, TenantsFileGrammar) {
  const std::vector<TenantConfig> ts = parseTenantsString(
      "# comment\n"
      "alpha:3:4:16:2000000:60\n"
      "\n"
      "bravo:2\n"
      "  carol:1:0:8  # trailing comment\n");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].name, "alpha");
  EXPECT_EQ(ts[0].weight, 3u);
  EXPECT_EQ(ts[0].max_running, 4u);
  EXPECT_EQ(ts[0].max_queued, 16u);
  EXPECT_EQ(ts[0].max_nodes, 2000000u);
  EXPECT_DOUBLE_EQ(ts[0].max_seconds, 60.0);
  EXPECT_EQ(ts[1].name, "bravo");
  EXPECT_EQ(ts[1].max_running, 0u);
  EXPECT_EQ(ts[2].name, "carol");
  EXPECT_EQ(ts[2].max_queued, 8u);
}

TEST(SvcQueue, TenantsFileErrorsNameTheLine) {
  try {
    parseTenantsString("alpha:3\nbravo:zero\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos);
    EXPECT_NE(msg.find("weight"), std::string::npos);
  }
  EXPECT_THROW(parseTenantsString("x:0"), Error);       // zero weight
  EXPECT_THROW(parseTenantsString(":3"), Error);        // empty name
  EXPECT_THROW(parseTenantsString("a:1:2:3:4:5:6"), Error);  // extra field
}

}  // namespace
}  // namespace bfvr::svc
