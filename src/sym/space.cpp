#include "sym/space.hpp"

#include <stdexcept>

namespace bfvr::sym {

StateSpace::StateSpace(Manager& m, const circuit::Netlist& n,
                       const std::vector<circuit::ObjRef>& order)
    : mgr_(&m), netlist_(&n) {
  if (order.size() != n.inputs().size() + n.latches().size()) {
    throw std::invalid_argument("StateSpace: order must list every source");
  }
  v_of_latch_.assign(n.latches().size(), 0);
  x_of_input_.assign(n.inputs().size(), 0);
  comp_of_latch_.assign(n.latches().size(), 0);
  unsigned next = 0;
  for (const circuit::ObjRef& o : order) {
    if (o.is_input) {
      x_of_input_.at(o.pos) = next;
      x_.push_back(next);
      next += 1;
    } else {
      v_of_latch_.at(o.pos) = next;
      v_.push_back(next);
      u_.push_back(next + 1);
      comp_of_latch_.at(o.pos) = comp_to_latch_.size();
      comp_to_latch_.push_back(o.pos);
      next += 2;
    }
  }
  num_vars_ = next;
  // Make sure the manager knows all indices (also pre-creates projection
  // nodes, which keeps later var() calls cheap).
  for (unsigned i = 0; i < num_vars_; ++i) (void)m.var(i);

  perm_u_to_v_.resize(num_vars_);
  perm_v_to_u_.resize(num_vars_);
  for (unsigned i = 0; i < num_vars_; ++i) {
    perm_u_to_v_[i] = i;
    perm_v_to_u_[i] = i;
  }
  for (std::size_t c = 0; c < v_.size(); ++c) {
    perm_u_to_v_[u_[c]] = v_[c];
    perm_v_to_u_[v_[c]] = u_[c];
  }
}

std::vector<bool> StateSpace::initialBits() const {
  std::vector<bool> bits(comp_to_latch_.size());
  for (std::size_t c = 0; c < comp_to_latch_.size(); ++c) {
    bits[c] = netlist_->latchInit(comp_to_latch_[c]);
  }
  return bits;
}

Bdd StateSpace::currentCube() const { return mgr_->cube(v_); }

Bdd StateSpace::inputCube() const { return mgr_->cube(x_); }

}  // namespace bfvr::sym
