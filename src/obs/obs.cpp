#include "obs/obs.hpp"

#include <cassert>

namespace bfvr::obs {

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kImage:
      return "image";
    case Phase::kReparam:
      return "reparam";
    case Phase::kUnion:
      return "union";
    case Phase::kCheck:
      return "check";
    case Phase::kConvert:
      return "convert";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

double PhaseSeconds::total() const noexcept {
  double t = 0.0;
  for (const double s : seconds) t += s;
  return t;
}

PhaseSeconds PhaseSeconds::since(const PhaseSeconds& before) const noexcept {
  PhaseSeconds d;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    d.seconds[i] = seconds[i] - before.seconds[i];
  }
  return d;
}

void PhaseTimer::push(Phase p) {
  const double t = now();
  if (!stack_.empty()) totals_[stack_.back()] += t - mark_;
  stack_.push_back(p);
  mark_ = t;
}

void PhaseTimer::pop() {
  assert(!stack_.empty());
  const double t = now();
  totals_[stack_.back()] += t - mark_;
  stack_.pop_back();
  mark_ = t;  // the parent scope (if any) resumes from here
}

}  // namespace bfvr::obs
