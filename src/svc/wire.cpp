#include "svc/wire.hpp"

#include <array>

namespace bfvr::svc {

namespace {

constexpr std::uint32_t kWireMagic = 0x53564642u;  // "BFVS" little-endian

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the same algorithm the
// checkpoint format uses, so corruption detection is uniform across the
// at-rest and on-the-wire encodings.
std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encodeFrame(const Frame& f) {
  if (f.payload.size() > kMaxFramePayload) {
    throw Error("wire: frame payload exceeds the " +
                std::to_string(kMaxFramePayload) + "-byte cap");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + f.payload.size());
  putU32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(0);  // reserved
  out.push_back(0);
  putU32(out, static_cast<std::uint32_t>(f.payload.size()));
  putU32(out, crc32(f.payload.data(), f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

std::uint32_t decodeFrameHeader(const std::uint8_t header[kFrameHeaderBytes],
                                FrameType* type, std::uint32_t* crc) {
  if (getU32(header) != kWireMagic) {
    throw Error("wire: bad frame magic (not a BFVS stream)");
  }
  if (header[4] != kWireVersion) {
    throw Error("wire: protocol version " + std::to_string(header[4]) +
                " (this build speaks " + std::to_string(kWireVersion) + ")");
  }
  if (header[6] != 0 || header[7] != 0) {
    throw Error("wire: nonzero reserved header bits");
  }
  const std::uint32_t len = getU32(header + 8);
  if (len > kMaxFramePayload) {
    throw Error("wire: oversized length prefix (" + std::to_string(len) +
                " bytes)");
  }
  *type = static_cast<FrameType>(header[5]);
  *crc = getU32(header + 12);
  return len;
}

void checkPayloadCrc(const std::uint8_t* payload, std::size_t n,
                     std::uint32_t want) {
  const std::uint32_t got = crc32(payload, n);
  if (got != want) {
    throw Error("wire: payload CRC mismatch (frame corrupted in transit)");
  }
}

const char* to_string(FrameType t) noexcept {
  switch (t) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello-ack";
    case FrameType::kSubmit:
      return "submit";
    case FrameType::kAccepted:
      return "accepted";
    case FrameType::kRejected:
      return "rejected";
    case FrameType::kJobStarted:
      return "job-started";
    case FrameType::kIteration:
      return "iteration";
    case FrameType::kJobEvicted:
      return "job-evicted";
    case FrameType::kJobDone:
      return "job-done";
    case FrameType::kCancel:
      return "cancel";
    case FrameType::kEvict:
      return "evict";
    case FrameType::kStats:
      return "stats";
    case FrameType::kStatsReply:
      return "stats-reply";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kBye:
      return "bye";
    case FrameType::kError:
      return "error";
  }
  return "?";
}

}  // namespace bfvr::svc
