#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>

#include "bdd/par.hpp"
#include "util/stats.hpp"

namespace bfvr::bdd {


const char* to_string(OpTag t) noexcept {
  switch (t) {
    case OpTag::kAnd:
      return "and";
    case OpTag::kXor:
      return "xor";
    case OpTag::kIte:
      return "ite";
    case OpTag::kExists:
      return "exists";
    case OpTag::kAndExists:
      return "and-exists";
    case OpTag::kConstrain:
      return "constrain";
    case OpTag::kRestrict:
      return "restrict";
    case OpTag::kCofactor2:
      return "cofactor2";
    case OpTag::kCompose:
      return "compose";
  }
  return "?";
}

const char* to_string(ManagerEvent::Kind k) noexcept {
  switch (k) {
    case ManagerEvent::Kind::kGc:
      return "gc";
    case ManagerEvent::Kind::kReorder:
      return "reorder";
    case ManagerEvent::Kind::kCacheResize:
      return "cache-resize";
    case ManagerEvent::Kind::kNodeBudget:
      return "node-budget";
    case ManagerEvent::Kind::kPressure:
      return "pressure";
  }
  return "?";
}

const char* to_string(PressureRung r) noexcept {
  switch (r) {
    case PressureRung::kForcedGc:
      return "forced-gc";
    case PressureRung::kCacheShrink:
      return "cache-shrink";
    case PressureRung::kReorder:
      return "reorder";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Bdd handle: intrusive registration with the manager so GC can mark roots.
// ---------------------------------------------------------------------------

Bdd::Bdd(Manager* m, Edge e) noexcept : mgr_(m), e_(e) { link(); }

Bdd::Bdd(const Bdd& o) noexcept : mgr_(o.mgr_), e_(o.e_) { link(); }

Bdd::Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), e_(o.e_) {
  link();
  o.unlink();
  o.mgr_ = nullptr;
}

Bdd& Bdd::operator=(const Bdd& o) noexcept {
  if (this == &o) return *this;
  unlink();
  mgr_ = o.mgr_;
  e_ = o.e_;
  link();
  return *this;
}

Bdd& Bdd::operator=(Bdd&& o) noexcept {
  if (this == &o) return *this;
  unlink();
  mgr_ = o.mgr_;
  e_ = o.e_;
  link();
  o.unlink();
  o.mgr_ = nullptr;
  return *this;
}

Bdd::~Bdd() { unlink(); }

void Bdd::link() noexcept {
  if (mgr_ == nullptr) return;
  // Parallel managers: handles are created/destroyed on pool workers too
  // (parallelInvoke bodies build Bdds), so the intrusive list needs a lock.
  if (mgr_->par_enabled_) {
    detail::SpinGuard g(mgr_->handle_lock_);
    prev_ = nullptr;
    next_ = mgr_->handles_;
    if (next_ != nullptr) next_->prev_ = this;
    mgr_->handles_ = this;
    return;
  }
  prev_ = nullptr;
  next_ = mgr_->handles_;
  if (next_ != nullptr) next_->prev_ = this;
  mgr_->handles_ = this;
}

void Bdd::unlink() noexcept {
  if (mgr_ == nullptr) return;
  if (mgr_->par_enabled_) {
    detail::SpinGuard g(mgr_->handle_lock_);
    if (prev_ != nullptr) {
      prev_->next_ = next_;
    } else {
      mgr_->handles_ = next_;
    }
    if (next_ != nullptr) next_->prev_ = prev_;
    prev_ = next_ = nullptr;
    return;
  }
  if (prev_ != nullptr) {
    prev_->next_ = next_;
  } else {
    mgr_->handles_ = next_;
  }
  if (next_ != nullptr) next_->prev_ = prev_;
  prev_ = next_ = nullptr;
}

unsigned Bdd::topVar() const {
  if (isNull() || isConst()) throw std::logic_error("topVar of constant BDD");
  return mgr_->varOf(e_);
}

Bdd Bdd::high() const {
  if (isNull() || isConst()) throw std::logic_error("high of constant BDD");
  return Bdd(mgr_, mgr_->highOf(e_));
}

Bdd Bdd::low() const {
  if (isNull() || isConst()) throw std::logic_error("low of constant BDD");
  return Bdd(mgr_, mgr_->lowOf(e_));
}

Bdd Bdd::operator~() const {
  if (isNull()) throw std::logic_error("negation of null BDD");
  return Bdd(mgr_, Manager::negate(e_));
}

Bdd Bdd::operator&(const Bdd& o) const {
  if (isNull()) throw std::logic_error("operation on null BDD");
  return mgr_->andB(*this, o);
}

Bdd Bdd::operator|(const Bdd& o) const {
  if (isNull()) throw std::logic_error("operation on null BDD");
  return mgr_->orB(*this, o);
}

Bdd Bdd::operator^(const Bdd& o) const {
  if (isNull()) throw std::logic_error("operation on null BDD");
  return mgr_->xorB(*this, o);
}

bool Bdd::implies(const Bdd& o) const {
  if (isNull()) throw std::logic_error("operation on null BDD");
  return (*this & ~o).isFalse();
}

Bdd Bdd::exists(const Bdd& cube) const { return mgr_->exists(*this, cube); }
Bdd Bdd::forall(const Bdd& cube) const { return mgr_->forall(*this, cube); }
Bdd Bdd::constrain(const Bdd& c) const { return mgr_->constrain(*this, c); }
Bdd Bdd::restrict(const Bdd& c) const { return mgr_->restrict(*this, c); }
Bdd Bdd::cofactor(unsigned var, bool value) const {
  return mgr_->cofactor(*this, var, value);
}
std::size_t Bdd::nodeCount() const { return mgr_->nodeCount(*this); }
double Bdd::satCount(unsigned num_vars) const {
  return mgr_->satCount(*this, num_vars);
}

// ---------------------------------------------------------------------------
// Manager: node store and unique table.
// ---------------------------------------------------------------------------

using detail::hash3;
using detail::kMul2;

Manager::Manager(unsigned num_vars) : Manager(num_vars, Config{}) {}

Manager::Manager(unsigned num_vars, Config cfg)
    : num_vars_(0), cfg_(cfg) {
  nodes_.reserve(1U << 12);
  // Node 0: the terminal (TRUE when referenced by a regular edge).
  nodes_.push_back(Node{kTermVar, kTrueEdge, kTrueEdge, kNil, 0});
  in_use_ = 1;
  peak_nodes_ = 1;
  gc_threshold_ = cfg_.gc_threshold;
  next_reorder_at_ = cfg_.reorder_threshold;
  // At least one full set, even under degenerate cache_bits.
  const std::size_t sets =
      std::max(std::size_t{1} << cfg_.cache_bits, kCacheWays) / kCacheWays;
  cache_keys_.assign(sets, CacheKeySet{});
  cache_data_.assign(sets, CacheSetData{});
  cache_set_mask_ = static_cast<std::uint32_t>(sets - 1);
  setupParallel();
  if (num_vars > 0) ensureVar(num_vars - 1);
}

Manager::~Manager() {
  pool_.reset();  // workers down before any manager state goes away
  // Orphan any handles that outlive the manager (they become null).
  for (Bdd* h = handles_; h != nullptr;) {
    Bdd* next = h->next_;
    h->mgr_ = nullptr;
    h->prev_ = h->next_ = nullptr;
    h = next;
  }
}

// ---------------------------------------------------------------------------
// Parallel machinery lifecycle (kernels and pool live in par.cpp/par.hpp).
// ---------------------------------------------------------------------------

void Manager::setupParallel() {
  const std::size_t sets =
      std::max(std::size_t{1} << cfg_.cache_bits, kCacheWays) / kCacheWays;
  if (cfg_.threads > 1) {
    par_enabled_ = true;
    if (shard_locks_ == nullptr) {
      shard_locks_ = std::make_unique<ShardLock[]>(kNumShards);
    }
    if (pcache_ == nullptr || pcache_sets_ != sets) {
      pcache_ = std::make_unique<PCacheSet[]>(sets);  // value-init: all empty
      pcache_sets_ = sets;
      pcache_mask_ = static_cast<std::uint32_t>(sets - 1);
    } else {
      pcacheClear();
    }
    pcache_gen_.store(1, std::memory_order_relaxed);
    // The sequential cache is dead weight in parallel mode; keep one set so
    // the (never-hit-in-par) sequential helpers stay well-defined.
    if (cache_keys_.size() != 1) {
      cache_keys_.assign(1, CacheKeySet{});
      cache_data_.assign(1, CacheSetData{});
      cache_set_mask_ = 0;
    }
    const unsigned workers = std::min(cfg_.threads, kMaxThreads) - 1;
    if (pool_ == nullptr || pool_->workers() != workers) {
      pool_ = std::make_unique<ParPool>(*this, workers);
    }
  } else {
    par_enabled_ = false;
    pool_.reset();
    shard_locks_.reset();
    pcache_.reset();
    pcache_sets_ = 0;
    pcache_mask_ = 0;
    if (cache_keys_.size() != sets) {
      cache_keys_.assign(sets, CacheKeySet{});
      cache_data_.assign(sets, CacheSetData{});
      cache_set_mask_ = static_cast<std::uint32_t>(sets - 1);
    }
  }
}

void Manager::pcacheClear() noexcept {
  for (std::size_t s = 0; s < pcache_sets_; ++s) {
    PCacheSet& set = pcache_[s];
    for (std::size_t w = 0; w < kCacheWays; ++w) {
      set.op[w].store(0, std::memory_order_relaxed);
    }
    set.ver.store(0, std::memory_order_relaxed);
  }
}

Bdd Manager::var(unsigned idx) {
  ensureVar(idx);
  return make(mkNode(idx, kTrueEdge, kFalseEdge));
}

void Manager::ensureVar(unsigned idx) {
  if (idx < num_vars_) return;
  for (unsigned v = num_vars_; v <= idx; ++v) {
    // New variables enter at the bottom of the current order, so with no
    // reordering the order is still the index order.
    var2level_.push_back(static_cast<std::uint32_t>(level2var_.size()));
    level2var_.push_back(v);
    group_of_var_.push_back(kNil);
    subtables_.emplace_back();
    subtables_.back().buckets.assign(4, kNil);
  }
  num_vars_ = idx + 1;
}

std::size_t Manager::subSlot(const SubTable& st, Edge high,
                             Edge low) const noexcept {
  return static_cast<std::size_t>(hash3(high, low, kMul2) &
                                  (st.buckets.size() - 1));
}

Edge Manager::mkNode(std::uint32_t var, Edge high, Edge low) {
  if (high == low) return high;
  // Canonical form: the high edge must be regular.
  if (isCompl(high)) {
    return negate(mkNode(var, negate(high), negate(low)));
  }
  assert(var < num_vars_);
  assert(isConstEdge(high) || level(high) > var2level_[var]);
  assert(isConstEdge(low) || level(low) > var2level_[var]);
  if (par_enabled_) return mkNodePar(var, high, low);
  SubTable& st = subtables_[var];
  const std::size_t slot = subSlot(st, high, low);
  for (std::uint32_t i = st.buckets[slot]; i != kNil; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.high == high && n.low == low) {
      return i << 1;
    }
  }
  const std::uint32_t idx = allocNode();
  Node& n = nodes_[idx];
  n.var = var;
  n.high = high;
  n.low = low;
  n.mark = 0;
  n.next = st.buckets[slot];
  st.buckets[slot] = idx;
  ++st.count;
  ++stats_.nodes_created;
  if (st.count > st.buckets.size()) growSubTable(var);
  return idx << 1;
}

/// Parallel twin of the mkNode body below: identical probe/insert/grow
/// logic, executed under the variable's shard lock. Two variables on the
/// same shard serialize; different shards run concurrently. Reads of OTHER
/// variables' nodes (level/highOf in the kernels) stay lock-free: node
/// fields are immutable after publication and every edge a thread can name
/// arrived through a synchronizing channel (task fork/join, the seqlock
/// cache, or this shard lock).
Edge Manager::mkNodePar(std::uint32_t var, Edge high, Edge low) {
  detail::SpinGuard shard(shard_locks_[var & (kNumShards - 1)].lk);
  SubTable& st = subtables_[var];
  const std::size_t slot = subSlot(st, high, low);
  for (std::uint32_t i = st.buckets[slot]; i != kNil; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.high == high && n.low == low) {
      return i << 1;
    }
  }
  const std::uint32_t idx = allocNode();  // takes alloc_lock_ inside
  Node& n = nodes_[idx];
  n.var = var;
  n.high = high;
  n.low = low;
  n.mark = 0;
  n.next = st.buckets[slot];
  st.buckets[slot] = idx;
  ++st.count;
  ++curStats().nodes_created;
  if (st.count > st.buckets.size()) growSubTable(var);
  return idx << 1;
}

std::uint32_t Manager::allocNode() {
  if (par_enabled_) return allocNodePar();
  // Fault-injection point: an armed plan's allocation clock ticks on every
  // allocation outside reordering (swap atomicity, as below). Also a
  // cooperative interrupt poll. Skipped while reordering: an adjacent-level
  // swap must complete atomically (its invariants do not hold mid-swap);
  // the reordering loops poll between swaps instead (reorder.cpp).
  if (!reordering_) {
    if (fault_armed_) faultAllocTick();
    if ((interrupt_check_ || fault_armed_) &&
        ++interrupt_tick_ >= kInterruptStride) {
      interrupt_tick_ = 0;
      if (fault_armed_) faultPollTick();
      if (interrupt_check_) interrupt_check_();
    }
  }
  if (free_list_ != kNil) {
    const std::uint32_t idx = free_list_;
    free_list_ = nodes_[idx].next;
    ++in_use_;
    if (in_use_ > peak_nodes_) peak_nodes_ = in_use_;
    return idx;
  }
  // The budget is not enforced while reordering: swaps allocate transient
  // nodes precisely to shrink the table, and sifting's max-growth abort
  // bounds the overshoot.
  if (!reordering_ && cfg_.max_nodes != 0 && nodes_.size() >= cfg_.max_nodes) {
    emitEvent(ManagerEvent::Kind::kNodeBudget, in_use_, cfg_.max_nodes, 0.0);
    throw NodeBudgetExceeded(cfg_.max_nodes, in_use_);
  }
  nodes_.push_back(Node{});
  ++in_use_;
  if (in_use_ > peak_nodes_) peak_nodes_ = in_use_;
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

/// Parallel twin of allocNode: the free list, in-use accounting, fault
/// clocks and store growth all live under alloc_lock_ (SpinGuard unlocks
/// on the throw paths). The user interrupt callback is polled BEFORE the
/// lock: it is arbitrary user code and may be slow or block, and every
/// other allocating thread would spin-wait at full CPU for the duration
/// if it ran inside the critical section. The fault hooks stay under the
/// lock — their clocks are plain members, and the hooks themselves are
/// internal O(1) throw-or-return points, never blocking.
/// The extra capacity guard keeps
/// nodes_ from reallocating while workers read it lock-free — ParRegion
/// reserved headroom at region entry. A mid-region capacity hit surfaces
/// as NodeBudgetExceeded when the configured budget is genuinely spent
/// (the ladder's GC refills the free list without growing the store), and
/// as ParCapacityExhausted otherwise, which withPressure answers with a
/// quiesced growParCapacity() + rerun.
std::uint32_t Manager::allocNodePar() {
  // Cooperative interrupt poll, outside the spinlock (see above). The
  // stride clock is a shared monotonic counter; the modulo keeps it
  // reset-free and race-free under concurrent increments. interrupt_check_
  // is only (un)installed at sequential points, so the unlocked read is
  // safe.
  if (!reordering_ && interrupt_check_ &&
      (par_interrupt_tick_.fetch_add(1, std::memory_order_relaxed) + 1) %
              kInterruptStride ==
          0) {
    interrupt_check_();
  }
  detail::SpinGuard g(alloc_lock_);
  if (!reordering_ && fault_armed_) {
    faultAllocTick();
    if (++interrupt_tick_ >= kInterruptStride) {
      interrupt_tick_ = 0;
      faultPollTick();
    }
  }
  if (free_list_ != kNil) {
    const std::uint32_t idx = free_list_;
    free_list_ = nodes_[idx].next;
    ++in_use_;
    if (in_use_ > peak_nodes_) peak_nodes_ = in_use_;
    return idx;
  }
  if (!reordering_ && cfg_.max_nodes != 0 && nodes_.size() >= cfg_.max_nodes) {
    emitEvent(ManagerEvent::Kind::kNodeBudget, in_use_, cfg_.max_nodes, 0.0);
    throw NodeBudgetExceeded(cfg_.max_nodes, in_use_);
  }
  if (in_par_region_.load(std::memory_order_relaxed) &&
      nodes_.size() == nodes_.capacity()) {
    if (!reordering_ && cfg_.max_nodes != 0 &&
        nodes_.capacity() >= cfg_.max_nodes) {
      throw NodeBudgetExceeded(nodes_.capacity(), in_use_);
    }
    throw detail::ParCapacityExhausted{};
  }
  nodes_.push_back(Node{});
  ++in_use_;
  if (in_use_ > peak_nodes_) peak_nodes_ = in_use_;
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Manager::growSubTable(std::uint32_t var) {
  SubTable& st = subtables_[var];
  std::vector<std::uint32_t> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 2, kNil);
  for (std::uint32_t head : old) {
    for (std::uint32_t i = head; i != kNil;) {
      const std::uint32_t next = nodes_[i].next;
      const Node& n = nodes_[i];
      const std::size_t slot = subSlot(st, n.high, n.low);
      nodes_[i].next = st.buckets[slot];
      st.buckets[slot] = i;
      i = next;
    }
  }
}

// ---------------------------------------------------------------------------
// Computed cache. cacheFind/cacheInsert live in the header so they inline
// into the recursive kernels.
// ---------------------------------------------------------------------------

void Manager::resizeCache(unsigned bits) {
  const std::size_t before = cacheSlots();
  const Timer timer;
  const std::size_t sets =
      std::max(std::size_t{1} << bits, kCacheWays) / kCacheWays;
  if (par_enabled_) {
    // Sequential safe point (ladder / reconfigure): no probes in flight.
    pcache_ = std::make_unique<PCacheSet[]>(sets);
    pcache_sets_ = sets;
    pcache_mask_ = static_cast<std::uint32_t>(sets - 1);
  } else {
    cache_keys_.assign(sets, CacheKeySet{});
    cache_data_.assign(sets, CacheSetData{});
    cache_set_mask_ = static_cast<std::uint32_t>(sets - 1);
  }
  cfg_.cache_bits = bits;
  emitEvent(ManagerEvent::Kind::kCacheResize, before, cacheSlots(),
            timer.seconds());
}

void Manager::emitEvent(ManagerEvent::Kind kind, std::size_t before,
                        std::size_t after, double seconds, PressureRung rung) {
  if (sink_ == nullptr) return;
  ManagerEvent e;
  e.kind = kind;
  e.size_before = before;
  e.size_after = after;
  e.seconds = seconds;
  e.automatic = auto_event_;
  e.rung = rung;
  if (par_enabled_) {
    // kNodeBudget can fire concurrently from several workers; sinks are
    // written single-threaded, so serialize the callback.
    detail::SpinGuard g(event_lock_);
    sink_->onManagerEvent(e);
    return;
  }
  sink_->onManagerEvent(e);
}

// ---------------------------------------------------------------------------
// Pressure governor: the degradation ladder run when an operation hits the
// node budget. Invoked from withPressure() between retries of the outermost
// public operation — at that boundary all operands are handle-protected and
// the failed attempt's partial results are unreferenced garbage, so a GC is
// safe (mid-operation it would not be: recursive kernels hold raw Edges).
// ---------------------------------------------------------------------------

bool Manager::relieve(unsigned rung) {
  const Config::PressureLadder& pl = cfg_.pressure_ladder;
  // Materialize the enabled rungs in escalation order, then run the one
  // requested. Skipping disabled rungs here keeps withPressure() oblivious
  // to the configuration: it just counts retries.
  PressureRung order[3];
  unsigned n = 0;
  if (pl.forced_gc) order[n++] = PressureRung::kForcedGc;
  if (pl.shrink_cache && cfg_.cache_bits > pl.min_cache_bits) {
    order[n++] = PressureRung::kCacheShrink;
  }
  if (pl.emergency_reorder) order[n++] = PressureRung::kReorder;
  if (rung >= n) return false;  // ladder exhausted: let the exception escape
  const PressureRung step = order[rung];
  const std::size_t before = in_use_;
  const Timer timer;
  // Every rung starts with a GC: the failed attempt's garbage is often
  // enough headroom by itself, and both heavier rungs want a clean table.
  gc();
  switch (step) {
    case PressureRung::kForcedGc:
      break;
    case PressureRung::kCacheShrink: {
      const unsigned bits = std::max(pl.min_cache_bits, cfg_.cache_bits - 1u);
      resizeCache(bits);
      break;
    }
    case PressureRung::kReorder:
      reorder(cfg_.reorder_method);
      break;
  }
  emitEvent(ManagerEvent::Kind::kPressure, before, in_use_, timer.seconds(),
            step);
  return true;
}

// ---------------------------------------------------------------------------
// Deterministic fault injection. Two independent clocks — one per node
// allocation, one per stride-1024 poll point — each with a sorted schedule
// of ticks at which to throw. The clocks are separate from OpStats and tick
// only when a plan is armed, so the disabled path is bit-identical.
// ---------------------------------------------------------------------------

void Manager::setFaultPlan(FaultPlan plan) {
  std::sort(plan.alloc_failures.begin(), plan.alloc_failures.end());
  std::sort(plan.spurious_interrupts.begin(), plan.spurious_interrupts.end());
  fault_plan_ = std::move(plan);
  fault_armed_ = !fault_plan_.empty();
  fault_alloc_count_ = 0;
  fault_poll_count_ = 0;
  fault_alloc_cursor_ = 0;
  fault_poll_cursor_ = 0;
  faults_injected_ = 0;
}

void Manager::faultAllocTick() {
  const std::uint64_t tick = ++fault_alloc_count_;
  const auto& sched = fault_plan_.alloc_failures;
  while (fault_alloc_cursor_ < sched.size() &&
         sched[fault_alloc_cursor_] < tick) {
    ++fault_alloc_cursor_;  // skip points already passed (e.g. re-armed plan)
  }
  if (fault_alloc_cursor_ < sched.size() &&
      sched[fault_alloc_cursor_] == tick) {
    ++fault_alloc_cursor_;
    ++faults_injected_;
    throw NodeBudgetExceeded(cfg_.max_nodes, in_use_, /*injected=*/true);
  }
}

void Manager::faultPollTick() {
  const std::uint64_t tick = ++fault_poll_count_;
  const auto& sched = fault_plan_.spurious_interrupts;
  while (fault_poll_cursor_ < sched.size() &&
         sched[fault_poll_cursor_] < tick) {
    ++fault_poll_cursor_;
  }
  if (fault_poll_cursor_ < sched.size() && sched[fault_poll_cursor_] == tick) {
    ++fault_poll_cursor_;
    ++faults_injected_;
    throw Interrupted(Interrupted::Reason::kCancelled);
  }
}

// ---------------------------------------------------------------------------
// Garbage collection: mark from all registered handles, sweep the rest.
// ---------------------------------------------------------------------------

void Manager::markFrom(Edge e) {
  mark_stack_.clear();
  mark_stack_.push_back(index(e));
  while (!mark_stack_.empty()) {
    const std::uint32_t i = mark_stack_.back();
    mark_stack_.pop_back();
    Node& n = nodes_[i];
    if (n.mark == mark_epoch_) continue;
    n.mark = mark_epoch_;
    if (n.var != kTermVar) {
      mark_stack_.push_back(index(n.high));
      mark_stack_.push_back(index(n.low));
    }
  }
}

void Manager::gc() {
  pollInterrupt();  // GC boundary: throws before any collection work starts
  const std::size_t before = in_use_;
  const Timer timer;  // one clock read; the event itself fires only with a sink
  ++stats_.gc_runs;
  ++mark_epoch_;
  if (mark_epoch_ == 0) {  // epoch wrapped: reset all marks
    for (Node& n : nodes_) n.mark = 0;
    mark_epoch_ = 1;
  }
  nodes_[0].mark = mark_epoch_;  // terminal is always live
  for (const Bdd* h = handles_; h != nullptr; h = h->next_) {
    markFrom(h->e_);
  }
  // Sweep: rebuild the per-variable subtables with live nodes only; free
  // the rest.
  for (SubTable& st : subtables_) {
    std::fill(st.buckets.begin(), st.buckets.end(), kNil);
    st.count = 0;
  }
  free_list_ = kNil;
  std::size_t live = 1;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.var == kFreeVar) {
      n.next = free_list_;
      free_list_ = i;
      continue;
    }
    if (n.mark == mark_epoch_) {
      SubTable& st = subtables_[n.var];
      const std::size_t slot = subSlot(st, n.high, n.low);
      n.next = st.buckets[slot];
      st.buckets[slot] = i;
      ++st.count;
      ++live;
    } else {
      n.var = kFreeVar;
      n.next = free_list_;
      free_list_ = i;
    }
  }
  in_use_ = live;
  // Cache entries may point at freed nodes: drop them all. Clearing the
  // keys alone suffices (op == 0 marks a way empty); stale results and
  // gens are unreachable until their way is re-keyed.
  std::fill(cache_keys_.begin(), cache_keys_.end(), CacheKeySet{});
  if (par_enabled_) pcacheClear();
  // Adapt the threshold: if little was reclaimed, collect less often.
  if (live * 4 > gc_threshold_ * 3) {
    gc_threshold_ = gc_threshold_ * 2;
  }
  emitEvent(ManagerEvent::Kind::kGc, before, in_use_, timer.seconds());
}

bool Manager::resetForReuse() {
  interrupt_check_ = {};
  interrupt_tick_ = 0;
  setFaultPlan({});
  sink_ = nullptr;
  clearVarGroups();
  if (handles_ != nullptr) return false;  // caller leaked live handles
  gc();  // sweeps every node (nothing is marked) and clears the cache keys
  if (in_use_ != 1) return false;  // only the terminal may survive
  // Back to the zero-variable state of Manager(0, cfg): the per-variable
  // subtables and the order maps go, the node store and cache keep their
  // allocations (free_list_ already threads every swept slot).
  num_vars_ = 0;
  var2level_.clear();
  level2var_.clear();
  group_of_var_.clear();
  next_group_ = 0;
  subtables_.clear();
  gc_threshold_ = cfg_.gc_threshold;
  next_reorder_at_ = cfg_.reorder_threshold;
  cache_gen_ = 1;
  cache_gen_tick_ = 0;
  pcache_gen_.store(1, std::memory_order_relaxed);
  stats_ = OpStats{};
  peak_nodes_ = in_use_;
  return true;
}

bool Manager::reconfigure(const Config& cfg) {
  if (num_vars_ != 0 || in_use_ != 1 || handles_ != nullptr) return false;
  const unsigned had_bits = cfg_.cache_bits;
  const bool had_par = par_enabled_;
  cfg_ = cfg;
  gc_threshold_ = cfg_.gc_threshold;
  next_reorder_at_ = cfg_.reorder_threshold;
  // setupParallel reshapes both caches and the pool for either direction of
  // a threads change (it keeps a matching pool across warm reuse). The
  // sequential-to-sequential case keeps the historical resize-on-bits-change
  // behavior exactly.
  if (cfg_.threads > 1 || had_par) {
    setupParallel();
  } else if (cfg_.cache_bits != had_bits) {
    resizeCache(cfg_.cache_bits);
  }
  return true;
}

void Manager::maybeGc() {
  // The engines' per-iteration safe point doubles as an interrupt poll, so
  // cancellation latency is bounded by one iteration even when the
  // iterations are too small to hit the allocation-stride poll.
  pollInterrupt();
  auto_event_ = true;
  if (cfg_.auto_reorder && !reordering_ && in_use_ >= next_reorder_at_) {
    reorder(cfg_.reorder_method);
    auto_event_ = false;
    return;
  }
  if (in_use_ >= gc_threshold_) gc();
  auto_event_ = false;
}

std::size_t Manager::liveNodeCount() {
  ++mark_epoch_;
  if (mark_epoch_ == 0) {
    for (Node& n : nodes_) n.mark = 0;
    mark_epoch_ = 1;
  }
  nodes_[0].mark = mark_epoch_;
  for (const Bdd* h = handles_; h != nullptr; h = h->next_) {
    markFrom(h->e_);
  }
  std::size_t live = 0;
  for (const Node& n : nodes_) {
    if (n.var != kFreeVar && n.mark == mark_epoch_) ++live;
  }
  return live;
}

Edge Manager::requireSameManager(const Bdd& b) const {
  if (b.manager() != this) {
    throw std::logic_error("BDD belongs to a different manager");
  }
  return b.raw();
}

}  // namespace bfvr::bdd
