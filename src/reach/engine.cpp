#include "reach/engine.hpp"

namespace bfvr::reach {

// The engines live in their own translation units (tr_reach.cpp,
// cbm_reach.cpp, bfv_reach.cpp); this one anchors shared vtables/helpers if
// any are added later and keeps the target layout uniform.

}  // namespace bfvr::reach
