// Quickstart: building sets as canonical Boolean functional vectors and
// manipulating them with the paper's algorithms — no characteristic
// function is ever constructed by union / intersection / quantification.
//
//   ./examples/quickstart
#include <cstdio>

#include "bfv/bfv.hpp"

using namespace bfvr;
using bfv::Bfv;

namespace {

void show(const char* name, const Bfv& f) {
  std::printf("%-12s |S| = %4.0f   shared BDD nodes = %zu   members:", name,
              f.isEmpty() ? 0.0 : f.countStates(), f.sharedSize());
  for (const auto& bits : f.enumerate(8)) {
    std::printf(" ");
    for (bool b : bits) std::printf("%d", b ? 1 : 0);
  }
  if (!f.isEmpty() && f.countStates() > 8) std::printf(" ...");
  std::printf("\n");
}

}  // namespace

int main() {
  // One manager per verification task; variables are identified by index
  // and the index order IS the variable order.
  bdd::Manager m(4);
  const std::vector<unsigned> vars{0, 1, 2, 3};

  // Elementary sets (§2.1): everything else is built from these with the
  // set algorithms.
  const Bfv universe = Bfv::universe(m, vars);
  const Bfv empty = Bfv::emptySet(m, vars);
  const Bfv p1 = Bfv::point(m, vars, {false, false, true, false});
  const signed char cube[] = {1, -1, -1, 0};  // 1??0
  const Bfv c = Bfv::cubeSet(m, vars, cube);
  show("universe", universe);
  show("empty", empty);
  show("point 0010", p1);
  show("cube 1??0", c);

  // §2.3 union and §2.4 intersection work directly on the vectors.
  const Bfv u = setUnion(p1, c);
  show("point|cube", u);
  const Bfv i = setIntersect(u, c);
  show("(p|c)&c", i);
  std::printf("intersection equals cube again: %s\n",
              i == c ? "yes" : "NO");

  // Membership and selection: the canonical vector maps any choice to the
  // nearest member under the paper's weighted metric.
  std::printf("u contains 1010: %s\n",
              u.contains({true, false, true, false}) ? "yes" : "no");
  const auto sel = u.select({false, true, true, true});
  std::printf("choice 0111 selects member ");
  for (bool b : sel) std::printf("%d", b ? 1 : 0);
  std::printf("\n");

  // §2.5 quantification (range semantics): consensus keeps the members
  // whose bit is forced by the prefix.
  show("forall c2", u.forallChoice(2));

  // Conversions to/from characteristic functions exist for interop and
  // for building sets from predicates (chi = v0 XOR v3 here).
  const Bfv parity = bfv::fromChar(m, m.var(0) ^ m.var(3), vars);
  show("v0 xor v3", parity);
  std::printf("round trip through chi is canonical-identical: %s\n",
              bfv::fromChar(m, parity.toChar(), vars) == parity ? "yes"
                                                                : "NO");
  return 0;
}
