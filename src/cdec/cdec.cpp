#include "cdec/cdec.hpp"

#include <stdexcept>

#include "bfv/internal.hpp"

namespace bfvr::cdec {

namespace {

void requireIncreasing(const std::vector<unsigned>& vars) {
  for (std::size_t i = 1; i < vars.size(); ++i) {
    if (vars[i - 1] >= vars[i]) {
      throw std::invalid_argument(
          "conjunctive decomposition requires component order == BDD order");
    }
  }
}

/// Constrain-based union on raw constraint vectors. Keeps the invariant
/// AND_{j<=i} h_j == PF_i | PG_i (projections distribute over disjunction),
/// and canonicalizes each component with the generalized cofactor of the
/// previous projection: h_i = (PF_i | PG_i) |> PH_{i-1}.
std::vector<bdd::Bdd> unionCoreCdec(Manager& m,
                                    const std::vector<unsigned>& vars,
                                    const std::vector<Bdd>& f,
                                    const std::vector<Bdd>& g) {
  (void)vars;
  const std::size_t n = f.size();
  std::vector<Bdd> h(n);
  Bdd pf = m.one();       // running projection of F: AND_{j<=i} f_j
  Bdd pg = m.one();       // running projection of G
  Bdd ph_prev = m.one();  // PH_{i-1} = PF_{i-1} | PG_{i-1}
  for (std::size_t i = 0; i < n; ++i) {
    pf &= f[i];
    pg &= g[i];
    const Bdd ph = pf | pg;
    h[i] = m.constrain(ph, ph_prev);
    ph_prev = ph;
    m.maybeGc();
  }
  return h;
}

}  // namespace

Cdec Cdec::emptySet(Manager& m, std::vector<unsigned> vars) {
  requireIncreasing(vars);
  return Cdec(&m, std::move(vars), {}, /*empty=*/true);
}

Cdec Cdec::universe(Manager& m, std::vector<unsigned> vars) {
  requireIncreasing(vars);
  std::vector<Bdd> comps(vars.size(), m.one());
  return Cdec(&m, std::move(vars), std::move(comps), false);
}

Cdec Cdec::fromChar(Manager& m, const Bdd& chi, std::vector<unsigned> vars) {
  requireIncreasing(vars);
  if (chi.isFalse()) return emptySet(m, std::move(vars));
  const std::size_t n = vars.size();
  // Suffix projections P_i = exists v_{i+1..n} chi, then the canonical
  // component c_i = constrain(P_i, P_{i-1}).
  std::vector<Bdd> proj(n);
  if (n > 0) {
    proj[n - 1] = chi;
    for (std::size_t i = n - 1; i-- > 0;) {
      const unsigned var[] = {vars[i + 1]};
      proj[i] = m.exists(proj[i + 1], m.cube(var));
    }
  }
  std::vector<Bdd> comps(n);
  Bdd prev = m.one();
  for (std::size_t i = 0; i < n; ++i) {
    comps[i] = m.constrain(proj[i], prev);
    prev = proj[i];
  }
  return Cdec(&m, std::move(vars), std::move(comps), false);
}

Cdec Cdec::fromBfv(const Bfv& f) {
  if (f.isNull()) throw std::logic_error("fromBfv of null Bfv");
  Manager& m = *f.manager();
  if (f.isEmpty()) return emptySet(m, f.choiceVars());
  std::vector<Bdd> comps(f.width());
  for (unsigned i = 0; i < f.width(); ++i) {
    comps[i] = m.xnorB(m.var(f.choiceVars()[i]), f.comps()[i]);
  }
  return Cdec(&m, f.choiceVars(), std::move(comps), false);
}

Cdec Cdec::fromConstraints(Manager& m, std::vector<unsigned> vars,
                           std::vector<Bdd> comps) {
  requireIncreasing(vars);
  if (comps.size() != vars.size()) {
    throw std::invalid_argument("fromConstraints: arity mismatch");
  }
  return Cdec(&m, std::move(vars), std::move(comps), false);
}

bool Cdec::operator==(const Cdec& o) const {
  if (mgr_ != o.mgr_ || vars_ != o.vars_) return false;
  if (empty_ || o.empty_) return empty_ == o.empty_;
  return comps_ == o.comps_;
}

Bdd Cdec::toChar() const {
  if (isNull()) throw std::logic_error("toChar on null Cdec");
  if (empty_) return mgr_->zero();
  Bdd chi = mgr_->one();
  for (const Bdd& c : comps_) chi &= c;
  return chi;
}

Bfv Cdec::toBfv() const {
  if (isNull()) throw std::logic_error("toBfv on null Cdec");
  if (empty_) return Bfv::emptySet(*mgr_, vars_);
  std::vector<Bdd> comps(vars_.size());
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    // f_i = c_i|v=1 & (~c_i|v=0 | v_i): forced-1 where only 1 satisfies the
    // constraint, the choice variable where both do.
    const Bdd c1 = mgr_->cofactor(comps_[i], vars_[i], true);
    const Bdd c0 = mgr_->cofactor(comps_[i], vars_[i], false);
    comps[i] = c1 & (~c0 | mgr_->var(vars_[i]));
  }
  return Bfv::fromComponents(*mgr_, vars_, std::move(comps), /*trusted=*/true);
}

double Cdec::countStates() const {
  if (isNull()) throw std::logic_error("countStates on null Cdec");
  if (empty_) return 0.0;
  return mgr_->satCount(toChar(), width());
}

std::size_t Cdec::sharedSize() const {
  if (isNull() || empty_) return 0;
  return mgr_->sharedNodeCount(comps_);
}

Cdec setUnion(const Cdec& a, const Cdec& b) {
  if (a.isNull() || b.isNull()) throw std::logic_error("union on null Cdec");
  if (a.mgr_ != b.mgr_ || a.vars_ != b.vars_) {
    throw std::invalid_argument("Cdec operands incompatible");
  }
  if (a.isEmpty()) return b;
  if (b.isEmpty()) return a;
  std::vector<Bdd> h = unionCoreCdec(*a.mgr_, a.vars_, a.comps_, b.comps_);
  return Cdec(a.mgr_, a.vars_, std::move(h), false);
}

Cdec setIntersect(const Cdec& a, const Cdec& b) {
  if (a.isNull() || b.isNull()) {
    throw std::logic_error("intersect on null Cdec");
  }
  if (a.mgr_ != b.mgr_ || a.vars_ != b.vars_) {
    throw std::invalid_argument("Cdec operands incompatible");
  }
  if (a.isEmpty()) return a;
  if (b.isEmpty()) return b;
  // Projection does not distribute over conjunction; go through chi.
  return Cdec::fromChar(*a.mgr_, a.toChar() & b.toChar(), a.vars_);
}

Cdec reparameterizeCdec(Manager& m, std::span<const Bdd> outputs,
                        std::vector<unsigned> choice_vars,
                        std::span<const unsigned> param_vars,
                        const bfv::ReparamOptions& opts) {
  requireIncreasing(choice_vars);
  if (outputs.size() != choice_vars.size()) {
    throw std::invalid_argument("reparameterizeCdec: arity mismatch");
  }
  // Initial constraints of the raw vector: c_i = v_i XNOR g_i. Per fixed
  // parameter assignment this is the canonical decomposition of a
  // singleton, so the slice-union loop applies unchanged.
  std::vector<Bdd> cur(outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    cur[i] = m.xnorB(m.var(choice_vars[i]), outputs[i]);
  }
  cur = bfv::internal::quantifyParams(m, std::move(cur), choice_vars,
                                      param_vars, opts, &unionCoreCdec);
  return Cdec(&m, std::move(choice_vars), std::move(cur), false);
}

}  // namespace bfvr::cdec
