// Search-based static variable ordering. The paper's Table 2 compares
// several externally produced orders (VIS static, dynamic-reordering
// snapshots, pdtrav orders); this module reproduces the methodology behind
// the better ones: start from a seed order and hill-climb on a cheap
// quality proxy — the shared BDD size of the next-state functions built
// under the candidate order — using adjacent transpositions, like one
// sifting pass taken offline. The result is then used as a *fixed* order,
// exactly as the paper fixes its D/P orders.
#pragma once

#include "circuit/orders.hpp"

namespace bfvr::sym {

struct OrderSearchOptions {
  /// Full adjacent-transposition sweeps over the order.
  unsigned passes = 2;
  /// Abort an evaluation whose manager exceeds this many nodes (counts as
  /// +infinity cost). 0 = unlimited.
  std::size_t eval_node_budget = 1U << 22;
};

/// Quality proxy of an order: shared node count of the transition
/// functions under it (SIZE_MAX when the evaluation blows the budget).
std::size_t orderCost(const circuit::Netlist& n,
                      const std::vector<circuit::ObjRef>& order,
                      std::size_t eval_node_budget);

/// Hill-climb from `start`; returns an order whose cost is <= the start's.
std::vector<circuit::ObjRef> searchOrder(const circuit::Netlist& n,
                                         std::vector<circuit::ObjRef> start,
                                         const OrderSearchOptions& opts = {});

}  // namespace bfvr::sym
