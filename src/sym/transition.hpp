// Transition-relation image computation — the characteristic-function
// baseline the paper compares against (VIS with the IWLS95 heuristics).
//
// The relation is kept as a list of per-latch conjuncts
//   T_i(v, x, u) = u_i XNOR delta_i(v, x)
// clustered up to a size threshold. Image computation folds
//   Img(S)(u) = exists v,x . S(v) & T_1 & ... & T_k
// over the clusters with *early quantification*: each v/x variable is
// quantified at the last cluster whose support mentions it (Ranjan et al.,
// IWLS95). Cluster order is chosen greedily to maximize variables retired
// per cluster, normalized by the variables a cluster introduces.
#pragma once

#include "sym/space.hpp"

namespace bfvr::sym {

struct TransitionOptions {
  /// Conjoin clusters until their BDD exceeds this many nodes (0 = build a
  /// single monolithic relation).
  std::size_t cluster_limit = 2500;
};

class TransitionRelation {
 public:
  TransitionRelation(const StateSpace& s, const TransitionOptions& opts = {});

  /// chi of the image over *current* variables (u->v renaming applied):
  /// one forward step from the states satisfying `from` (over v).
  Bdd image(const Bdd& from) const;

  /// chi of the predecessors (over v) of the states satisfying `to`
  /// (over v): exists x,u . T(v,x,u) & to[v->u]. Used by the backward
  /// fixpoints of the CTL checker.
  Bdd preimage(const Bdd& to) const;

  std::size_t numClusters() const noexcept { return clusters_.size(); }
  /// Total shared node count of the cluster BDDs.
  std::size_t sharedSize() const;

 private:
  const StateSpace* space_;
  std::vector<Bdd> clusters_;
  /// cubes_[k]: variables to quantify when conjoining cluster k (variables
  /// not mentioned by clusters k+1..end).
  std::vector<Bdd> cubes_;
  /// Backward counterparts (u/x instead of v/x), built on first preimage.
  mutable std::vector<Bdd> cubes_bw_;
};

/// Characteristic function of the single initial state (over v).
Bdd initialChar(const StateSpace& s);

}  // namespace bfvr::sym
