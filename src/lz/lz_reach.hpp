// Reachability on logical zonotopes: the image/fixpoint loop of the BDD
// engines, re-run on generator matrices (src/lz/genset.hpp) with per-gate
// exactness tracking — and no BDD manager anywhere in the call graph.
//
// Images are computed by *affine-form* symbolic simulation: every signal of
// the cone carries a packed coefficient row over [constant | g_1 .. g_m]
// where the g_k are the parameters of the frontier member being expanded
// plus one fresh parameter per primary input. XOR/XNOR/NOT/BUF are exact
// wordwise operations on those rows. AND multiplies two affine forms; the
// cross term (A.beta)(B.beta) is quadratic, so it is over-approximated by a
// fresh free parameter delta — memoized per unordered (A, B) pair so the
// same product cancels with itself — and the evaluation is flagged lossy.
// OR/NOR/NAND reduce to AND and NOT. The latch-data rows then column-slice
// into the image zonotope.
//
// Consequences, which are the whole design:
//  * On XOR-affine circuits (free-running LFSRs, CRCs, shift/ring
//    structures) every gate is exact, the reached set is represented
//    exactly, and the engine reports RunStatus::kDone with a bit-exact
//    state count — typically orders of magnitude faster than any BDD
//    engine, because an image is O(gates * generators) word ops.
//  * Elsewhere the result is a sound over-approximation (reached set of
//    the circuit is a subset of the reported set). That still answers one
//    question conclusively: if a target output cannot be asserted anywhere
//    in the over-approximation, it is unreachable — the pre-filter the
//    portfolio racer wants. Every other lossy outcome is reported as
//    RunStatus::kInconclusive, a status the portfolio never crowns.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "circuit/netlist.hpp"
#include "lz/genset.hpp"
#include "util/stats.hpp"

namespace bfvr::lz {

/// Union-of-members reached set: explicit points (rank-0 members) plus a
/// bounded list of zonotopes. Points of circuits with <= 64 latches pack
/// into the hash set; wider circuits keep whole rows.
struct StateSet {
  unsigned dims = 0;
  std::vector<GeneratorSet> zonos;
  std::unordered_set<std::uint64_t> points;  ///< packed rows, dims <= 64
  std::set<Bits> wide_points;                ///< rows, dims > 64

  explicit StateSet(unsigned d = 0) : dims(d) {}

  bool containsPoint(const Bits& p) const;
  /// Points + sum of member counts; >= |set| (members may overlap).
  double upperBound() const noexcept;
  std::size_t pointCount() const noexcept {
    return points.size() + wide_points.size();
  }
};

/// Per-iteration progress snapshot, streamed through LzOptions::on_iteration
/// (plain data — the job layer adapts it to obs::IterationRecord so src/lz
/// stays free of the obs -> bdd dependency chain).
struct IterationStats {
  unsigned iteration = 0;        ///< 1-based, matches LzResult::iterations
  double frontier_states = 0.0;  ///< upper bound on the set just expanded
  std::size_t frontier_members = 0;
  std::size_t zonotopes = 0;  ///< reached-set composition after the step
  std::size_t points = 0;
  unsigned generators = 0;      ///< widest generator pool of the step
  double reached_upper = 0.0;   ///< running upper bound on reached states
  double seconds = 0.0;
};

struct LzOptions {
  /// max_seconds is enforced per frontier member; max_live_nodes has no
  /// meaning here (there are no nodes) and is ignored.
  Budget budget;
  /// Cap on frontier iterations (0 = run to fixpoint). Like the BDD
  /// engines, a capped run still reports kDone when everything it did
  /// compute is exact: "states within k steps" is an exact answer, and at
  /// equal caps it is the same answer the BDD engines give.
  unsigned max_iterations = 0;
  /// Zonotope members tracked before folding them into their affine hull
  /// (rank-monotone, so folding guarantees termination on lossy circuits).
  std::size_t merge_threshold = 64;
  /// Explicit points tracked before folding them into the hull as well.
  std::size_t max_points = std::size_t{1} << 20;
  /// Exact-count budget: when points + sum 2^rank at the end of the run is
  /// at most this, the members are enumerated (deduplicated) for an exact
  /// state count; above it the count degrades to an upper bound.
  std::size_t enum_cap = std::size_t{1} << 22;
  /// Cooperative cancellation, polled between frontier members. Returns
  /// true to stop the run with RunStatus::kCancelled.
  std::function<bool()> cancelled;
  /// Pre-filter target: position in Netlist::outputs() of the output to
  /// test for reachability of output==1, or -1 for a plain state count.
  int target_output = -1;
  std::function<void(const IterationStats&)> on_iteration;
};

struct LzResult {
  RunStatus status = RunStatus::kDone;
  /// Why the run is not exact/complete (lossy gates, member overflow,
  /// iteration cap, enumeration overflow, deadline). Empty for clean kDone.
  std::string message;
  /// Whether the reached set AND its count are exact (no lossy gate fired,
  /// no inexact hull fold, count fully enumerated).
  bool exact = false;
  /// Exact state count when `exact`; a sound upper bound otherwise.
  double states = 0.0;
  unsigned iterations = 0;
  double seconds = 0.0;
  std::size_t zonotopes = 0;     ///< final member counts
  std::size_t point_states = 0;
  unsigned peak_generators = 0;  ///< widest generator pool of any image
  std::uint64_t lossy_products = 0;  ///< fresh deltas minted for AND cross terms
  /// Pre-filter verdict when LzOptions::target_output was set; nullopt when
  /// the run could not conclude (lossy hit, or cut off before fixpoint).
  std::optional<bool> target_reachable;
  /// The final reached set (over-approximation unless `exact`).
  StateSet reached;
};

/// Run the zonotope fixpoint on `n` from its latch initial state. Never
/// allocates a BDD. Throws only std::bad_alloc / std::invalid_argument on a
/// malformed netlist; resource exits are folded into the status.
LzResult lzReach(const circuit::Netlist& n, const LzOptions& opts = {});

}  // namespace bfvr::lz
