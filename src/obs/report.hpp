// Machine- and human-readable run reports for a RunTrace: one JSON object
// per run (nested per-iteration records and manager events — the payload of
// the benches' `--trace` files) and an aligned-column text table for
// eyeballing where a run's time and nodes went.
//
// obs sits below reach, so the run-level summary arrives as a RunMeta the
// caller fills from its ReachResult (see bench/support.hpp for the adapter).
//
// The job runner (src/run) reports at one more level: a batch of jobs
// scheduled across a worker pool. JobRecord is the per-job summary row and
// jobsReportJson() the aggregated JOBS_<name>.json payload the `bfv_run`
// CLI writes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace bfvr::obs {

/// Run-level summary attached to a trace report; mirrors the fields of
/// reach::ReachResult the bench summaries already publish.
struct RunMeta {
  std::string circuit;
  std::string order;
  std::string engine;
  std::string status = "done";  ///< to_string(RunStatus) tag
  double seconds = 0.0;
  unsigned iterations = 0;
  double states = 0.0;
  std::size_t peak_live_nodes = 0;
  bdd::OpStats ops;  ///< whole-run counters (for the overall hit rate)
};

/// Computed-cache hit rate of a counter snapshot (0 when no lookups).
double cacheHitRate(const bdd::OpStats& ops) noexcept;

/// Per-operation computed-cache counters as one JSON object: a key per op
/// tag with lookups (`{"and": {"hits": H, "misses": M}, ...}`), omitting
/// tags the snapshot never exercised. Shared by the trace reports and the
/// benches' `--json` summaries.
std::string opCacheJson(const bdd::OpStats& ops);

/// One JSON object: meta fields, phase totals, `trace` (array of iteration
/// records with phase_seconds / ops_delta / cache_hit_rate) and `events`.
std::string reportJson(const RunMeta& meta, const RunTrace& trace);

/// Aligned-column text rendering of the same report.
std::string reportTable(const RunMeta& meta, const RunTrace& trace);

/// One executed attempt of a retried job (mirror of run::AttemptRecord,
/// kept as plain data so obs stays below run).
struct JobAttempt {
  std::string status;      ///< to_string(RunStatus) tag
  std::string message;     ///< failure reason; empty if done
  std::string escalation;  ///< retry step applied ("" for the first attempt)
  double seconds = 0.0;
  bool resumed = false;               ///< restarted from a checkpoint file
  std::uint64_t faults_injected = 0;  ///< injected faults hit this attempt
};

/// One scheduled job of a batch/portfolio run — what the job runner knows
/// after the worker finished (or failed, timed out, or was cancelled by a
/// winning portfolio sibling). Plain data, so obs stays below run.
struct JobRecord {
  std::string name;     ///< job name (portfolio variants: "<job>/<engine>")
  std::string circuit;
  std::string order;
  std::string engine;
  std::string status = "done";  ///< to_string(RunStatus) tag
  /// Why the job did not finish: exception text, budget/live-node counts
  /// for memouts, the exceeded deadline for timeouts. Empty iff "done".
  std::string message;
  unsigned worker = 0;          ///< pool worker index that ran the job
  double queue_seconds = 0.0;   ///< time spent waiting for a worker
  double seconds = 0.0;         ///< execution wall-clock (setup + engine)
  unsigned iterations = 0;
  double states = 0.0;
  std::size_t peak_live_nodes = 0;
  bdd::OpStats ops;
  /// Per-attempt history; size > 1 only when a RetryPolicy re-ran the job
  /// after memout attempts (the `attempts` array of the JSON record).
  std::vector<JobAttempt> attempts;
  /// Portfolio bookkeeping: the race's group name (empty for plain jobs)
  /// and whether this variant was the race's first conclusive finisher.
  std::string group;
  bool winner = false;
  /// Full per-iteration report (reportJson) when the job was traced; empty
  /// otherwise.
  std::string trace_json;
};

/// The aggregated batch report: one JSON object with batch-level meta
/// (manifest name, worker count, wall-clock, per-status job counts) and a
/// `jobs` array of JobRecord objects (each embedding its trace report when
/// present).
std::string jobsReportJson(const std::string& batch, unsigned workers,
                           double total_seconds,
                           std::span<const JobRecord> jobs);

/// Per-tenant counters of a serving run (src/svc). Plain data, so obs
/// stays below svc the same way it stays below run.
struct SvcTenantStats {
  std::string name;
  unsigned weight = 1;
  std::uint64_t submitted = 0;  ///< submissions received (admitted or not)
  std::uint64_t rejected = 0;   ///< refused by admission control
  std::uint64_t done = 0;
  std::uint64_t timeout = 0;
  std::uint64_t memout = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t error = 0;
  /// Sound-but-approximate completions (the lz engine's over-approximating
  /// runs): terminal, not an error, never a conclusive answer.
  std::uint64_t inconclusive = 0;
  std::uint64_t evictions = 0;  ///< suspend-to-checkpoint events
  std::uint64_t resumes = 0;    ///< jobs restarted from an eviction image
  double queue_seconds = 0.0;   ///< total time jobs waited for a worker
  double exec_seconds = 0.0;    ///< total execution wall-clock

  /// Jobs that reached a terminal status.
  std::uint64_t finished() const noexcept {
    return done + timeout + memout + cancelled + error + inconclusive;
  }
};

/// Server-level counters of a serving run.
struct SvcServerStats {
  std::string name;
  std::string endpoint;
  unsigned workers = 0;
  double seconds = 0.0;           ///< server uptime
  std::uint64_t sessions = 0;     ///< client sessions accepted
  std::uint64_t dispatches = 0;   ///< jobs handed to the worker pool
  std::uint64_t warm_hits = 0;    ///< jobs served a reused warm manager
  std::uint64_t warm_misses = 0;  ///< jobs that built a fresh manager
  std::uint64_t resets_failed = 0;  ///< managers destroyed after a job leak
  std::uint64_t leaked_nodes = 0;   ///< live nodes those leaks orphaned
};

/// One stamped moment on a job's span timeline. `t` is seconds since the
/// span opened (the submit frame arriving); `what` is the lifecycle step
/// ("received", "admitted", "queued", "dispatched", "running", "evicted",
/// "resumed", "done"); `detail` carries the step's payload ("worker=2",
/// "iter=17", the terminal status).
struct SpanEvent {
  std::string what;
  double t = 0.0;
  std::string detail;
};

/// The span timeline of one served job: everything that happened to it
/// between the submit frame and its terminal event, under a server-assigned
/// trace ID. Plain data, so obs stays below svc.
struct JobSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t job = 0;  ///< server job id (0 until admitted)
  std::string tenant;
  /// Client idempotency key, when the submission carried one — the handle
  /// a retrying client uses to find its job again in SVC_*.json.
  std::string idem;
  std::string status;  ///< terminal status tag; empty while in flight
  double start = 0.0;  ///< seconds since server start when the span opened
  unsigned evictions = 0;
  std::vector<unsigned> workers;  ///< each worker that ran it, in order
  std::vector<SpanEvent> events;
};

/// One span as a JSON object (trace id, tenant, status, workers, events).
std::string spanJson(const JobSpan& s);

/// Live-state additions to the serving report: current scheduler depth and
/// recent span timelines, plus a metrics document to embed verbatim.
struct SvcReportExtras {
  std::uint64_t queue_depth = 0;  ///< jobs admitted but not yet dispatched
  std::uint64_t running = 0;      ///< jobs currently on a worker
  std::span<const JobSpan> spans;
  std::string metrics_json;  ///< Registry::json() output; "" to omit
  std::string flight_json;   ///< FlightRecorder::json() output; "" to omit
};

/// The SVC_<name>.json payload: server meta + totals ("jobs_done",
/// "leaked_nodes", ...) + a `tenants` array of per-tenant objects. The
/// soak harness greps the totals, so their keys are part of the report's
/// contract. The extras overload appends `queue_depth`/`running`, a
/// `spans` array, and an embedded `metrics` object — the same document
/// serves SVC_*.json and the live Stats reply.
std::string svcReportJson(const SvcServerStats& server,
                          std::span<const SvcTenantStats> tenants);
std::string svcReportJson(const SvcServerStats& server,
                          std::span<const SvcTenantStats> tenants,
                          const SvcReportExtras& extras);

}  // namespace bfvr::obs
