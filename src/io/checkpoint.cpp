#include "io/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <unordered_map>
#include <utility>

namespace bfvr::io {

namespace {

constexpr char kMagic[8] = {'B', 'F', 'V', 'R', 'C', 'K', 'P', 'T'};

// ---------------------------------------------------------------------------
// Little-endian byte buffer
// ---------------------------------------------------------------------------

void put8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }

void put32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Bounds-checked cursor over the payload; every malformed-input path is an
/// io::Error, never undefined behaviour.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t pos = 0;

  void need(std::size_t k) const {
    if (n - pos < k) throw Error("checkpoint: truncated payload");
  }
  std::uint8_t get8() {
    need(1);
    return p[pos++];
  }
  std::uint32_t get32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[pos++]} << (8 * i);
    return v;
  }
  std::uint64_t get64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[pos++]} << (8 * i);
    return v;
  }
  std::string getStr() {
    const std::size_t len = get8();
    need(len);
    std::string s(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return s;
  }
};

// ---------------------------------------------------------------------------
// Shared-DAG encoder: dense topological ids, children before parents,
// id 0 = terminal (regular constant = TRUE), edge = (id << 1) | complement.
// ---------------------------------------------------------------------------

struct NodeRec {
  std::uint32_t var;
  std::uint64_t hi;
  std::uint64_t lo;
};

class DagEncoder {
 public:
  /// Encode one root edge, appending any nodes not yet in the table.
  std::uint64_t encode(const Bdd& b) {
    if (b.isConst()) return b.isFalse() ? 1 : 0;
    const bool compl_in = (b.raw() & 1U) != 0;
    const Bdd reg = compl_in ? ~b : b;
    visit(reg);
    return (std::uint64_t{id_.at(reg.raw())} << 1) |
           static_cast<std::uint64_t>(compl_in);
  }

  const std::vector<NodeRec>& nodes() const noexcept { return nodes_; }

 private:
  /// Iterative postorder from a regular, non-constant edge: an explicit
  /// stack instead of recursion so deep DAGs cannot overflow the C stack.
  void visit(const Bdd& root) {
    if (id_.count(root.raw()) != 0) return;
    std::vector<std::pair<Bdd, bool>> stack;
    stack.emplace_back(root, false);
    while (!stack.empty()) {
      auto [n, expanded] = stack.back();
      stack.pop_back();
      if (id_.count(n.raw()) != 0) continue;
      if (!expanded) {
        stack.emplace_back(n, true);
        for (const Bdd c : {n.high(), n.low()}) {
          if (c.isConst()) continue;
          const Bdd creg = (c.raw() & 1U) != 0 ? ~c : c;
          if (id_.count(creg.raw()) == 0) stack.emplace_back(creg, false);
        }
      } else {
        NodeRec rec;
        rec.var = n.topVar();
        rec.hi = childEdge(n.high());
        rec.lo = childEdge(n.low());
        nodes_.push_back(rec);
        id_.emplace(n.raw(), static_cast<std::uint32_t>(nodes_.size()));
      }
    }
  }

  std::uint64_t childEdge(const Bdd& c) const {
    if (c.isConst()) return c.isFalse() ? 1 : 0;
    const bool compl_in = (c.raw() & 1U) != 0;
    const Bdd reg = compl_in ? ~c : c;
    return (std::uint64_t{id_.at(reg.raw())} << 1) |
           static_cast<std::uint64_t>(compl_in);
  }

  std::unordered_map<bdd::Edge, std::uint32_t> id_;  // regular edge -> dense id
  std::vector<NodeRec> nodes_;
};

void putRoots(std::vector<std::uint8_t>& buf, DagEncoder& enc,
              const std::vector<Bdd>& roots) {
  put32(buf, static_cast<std::uint32_t>(roots.size()));
  for (const Bdd& b : roots) {
    if (b.isNull()) throw Error("checkpoint: null root");
    put64(buf, enc.encode(b));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

// ---------------------------------------------------------------------------
// save / load
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const Checkpoint& c) {
  if (c.engine.size() > 255) throw Error("checkpoint: engine tag too long");
  // Find the manager behind the roots (level2var alone does not carry it).
  const Manager* mgr = nullptr;
  for (const auto* roots : {&c.reached, &c.frontier}) {
    for (const Bdd& b : *roots) {
      if (b.isNull()) throw Error("checkpoint: null root");
      if (mgr == nullptr) mgr = b.manager();
      if (b.manager() != mgr) throw Error("checkpoint: mixed managers");
    }
  }

  std::vector<std::uint8_t> payload;
  put8(payload, static_cast<std::uint8_t>(c.engine.size()));
  payload.insert(payload.end(), c.engine.begin(), c.engine.end());
  put8(payload, static_cast<std::uint8_t>(c.kind));
  put8(payload, c.reached_empty ? 1 : 0);
  put8(payload, c.frontier_empty ? 1 : 0);
  put32(payload, c.iteration);
  put32(payload, static_cast<std::uint32_t>(c.level2var.size()));
  for (const unsigned v : c.level2var) put32(payload, v);
  put32(payload, static_cast<std::uint32_t>(c.choice_vars.size()));
  for (const unsigned v : c.choice_vars) put32(payload, v);

  // Encode the roots first into a scratch buffer: the node table they
  // reference must precede them in the payload (decode is single-pass).
  DagEncoder enc;
  std::vector<std::uint8_t> roots_buf;
  putRoots(roots_buf, enc, c.reached);
  putRoots(roots_buf, enc, c.frontier);
  put64(payload, enc.nodes().size());
  for (const NodeRec& n : enc.nodes()) {
    put32(payload, n.var);
    put64(payload, n.hi);
    put64(payload, n.lo);
  }
  payload.insert(payload.end(), roots_buf.begin(), roots_buf.end());

  std::vector<std::uint8_t> file;
  file.insert(file.end(), kMagic, kMagic + sizeof(kMagic));
  put32(file, kCheckpointVersion);
  put32(file, crc32(payload.data(), payload.size()));
  put64(file, payload.size());
  file.insert(file.end(), payload.begin(), payload.end());
  return file;
}

void save(const std::string& path, const Checkpoint& c) {
  const std::vector<std::uint8_t> file = encode(c);

  // Atomic publish: write the sibling tmp file, then rename over the
  // destination. A crash mid-write leaves the old checkpoint intact.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("checkpoint: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    if (!out) throw Error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: rename to " + path + " failed");
  }
}

Checkpoint decode(const std::uint8_t* data, std::size_t n, Manager& m) {
  if (n < 24) throw Error("checkpoint: file too short");
  if (!std::equal(kMagic, kMagic + sizeof(kMagic), data)) {
    throw Error("checkpoint: bad magic");
  }
  Reader hdr{data + 8, n - 8};
  const std::uint32_t version = hdr.get32();
  if (version != kCheckpointVersion) {
    throw Error("checkpoint: unsupported version " + std::to_string(version));
  }
  const std::uint32_t want_crc = hdr.get32();
  const std::uint64_t payload_size = hdr.get64();
  if (payload_size != n - 24) {
    throw Error("checkpoint: payload size mismatch");
  }
  const std::uint8_t* payload = data + 24;
  if (crc32(payload, payload_size) != want_crc) {
    throw Error("checkpoint: CRC mismatch (corrupt file)");
  }

  Reader r{payload, payload_size};
  Checkpoint c;
  c.engine = r.getStr();
  const std::uint8_t kind = r.get8();
  if (kind > static_cast<std::uint8_t>(RootKind::kCdec)) {
    throw Error("checkpoint: unknown root kind");
  }
  c.kind = static_cast<RootKind>(kind);
  c.reached_empty = r.get8() != 0;
  c.frontier_empty = r.get8() != 0;
  c.iteration = r.get32();
  c.level2var.resize(r.get32());
  for (unsigned& v : c.level2var) v = r.get32();
  c.choice_vars.resize(r.get32());
  for (unsigned& v : c.choice_vars) v = r.get32();

  if (c.level2var.size() != m.numVars()) {
    throw Error("checkpoint: variable count mismatch (file " +
                std::to_string(c.level2var.size()) + ", manager " +
                std::to_string(m.numVars()) + ")");
  }
  // Restore the recorded order before decoding: with the same order the
  // rebuilt DAG is canonical node-for-node as saved, which is what makes
  // the resumed fixpoint bit-identical.
  m.setVarOrder(c.level2var);

  const std::uint64_t node_count = r.get64();
  std::vector<Bdd> table;
  table.reserve(node_count);
  const auto resolve = [&](std::uint64_t e) -> Bdd {
    const std::uint64_t id = e >> 1;
    if (id > table.size()) throw Error("checkpoint: forward edge reference");
    Bdd b = id == 0 ? m.one() : table[id - 1];
    return (e & 1U) != 0 ? ~b : b;
  };
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const std::uint32_t var = r.get32();
    if (var >= m.numVars()) throw Error("checkpoint: variable out of range");
    const Bdd hi = resolve(r.get64());
    const Bdd lo = resolve(r.get64());
    // ite(v, hi, lo) re-interns exactly the saved node (the order matches,
    // so v sits above hi/lo); a corrupt-but-CRC-valid file still only ever
    // produces some canonical BDD, never an invalid one.
    table.push_back(m.ite(m.var(var), hi, lo));
  }
  const auto readRoots = [&](std::vector<Bdd>& out) {
    out.resize(r.get32());
    for (Bdd& b : out) b = resolve(r.get64());
  };
  readRoots(c.reached);
  readRoots(c.frontier);
  if (r.pos != r.n) throw Error("checkpoint: trailing bytes");
  return c;
}

Checkpoint load(const std::string& path, Manager& m) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return decode(file.data(), file.size(), m);
}

}  // namespace bfvr::io
