// Experiment: the §2.7 claim — with component order equal to the BDD
// order, the conjunctive-decomposition algorithms (constrain-based) need
// fewer BDD operations than the BFV exclusion-condition algorithms. The
// flip side (also §2.7 / Table 3): the decomposition materializes prefix
// projections, whose last element is the full characteristic function, so
// on dependency-rich sets its peak size is worse. Both effects measured.
#include "cdec/cdec.hpp"
#include "support.hpp"
#include "util/rng.hpp"

using namespace bfvr;
using namespace bfvr::bench;
using bfv::Bfv;
using cdec::Cdec;

namespace {

bdd::Bdd randomChi(bdd::Manager& m, const std::vector<unsigned>& vars,
                   Rng& rng) {
  bdd::Bdd chi = m.one();
  const unsigned n = static_cast<unsigned>(vars.size());
  // Clauses draw their literals from a small window of adjacent variables:
  // random wide 3-CNF conjunctions have exponentially large BDDs under any
  // fixed order, which would benchmark the pathology instead of the
  // algorithms.
  for (unsigned c = 0; c < n / 2; ++c) {
    const unsigned base = rng.below(n);
    bdd::Bdd clause = m.zero();
    for (int lit = 0; lit < 3; ++lit) {
      const unsigned v = vars[(base + rng.below(5)) % n];
      clause |= rng.flip() ? m.var(v) : ~m.var(v);
    }
    chi &= clause;
  }
  if (chi.isFalse()) chi = m.var(vars[0]);
  return chi;
}

void unionOps(JsonLog& log) {
  std::printf(
      "Set union, random sets: BDD operations and wall time per call\n"
      "%-6s | %10s %10s %9s | %10s %10s %9s\n",
      "width", "BFV ops", "BFV steps", "BFV ms", "CDEC ops", "CDEC steps",
      "CDEC ms");
  hr(78);
  for (unsigned n : {8U, 16U, 32U, 64U}) {
    bdd::Manager m(n);
    Rng rng(n * 7 + 1);
    std::vector<unsigned> vars(n);
    for (unsigned i = 0; i < n; ++i) vars[i] = i;
    const Bfv fa = bfv::fromChar(m, randomChi(m, vars, rng), vars);
    const Bfv fb = bfv::fromChar(m, randomChi(m, vars, rng), vars);
    const Cdec ca = Cdec::fromBfv(fa);
    const Cdec cb = Cdec::fromBfv(fb);
    constexpr int kReps = 20;

    m.resetStats();
    Timer t1;
    Bfv fu;
    for (int i = 0; i < kReps; ++i) {
      fu = setUnion(fa, fb);
      m.gc();
    }
    const double bfv_ms = t1.seconds() * 1000 / kReps;
    const auto bfv_ops = m.stats().top_ops / kReps;
    const auto bfv_steps = m.stats().recursive_steps / kReps;

    m.resetStats();
    Timer t2;
    Cdec cu;
    for (int i = 0; i < kReps; ++i) {
      cu = setUnion(ca, cb);
      m.gc();
    }
    const double cdec_ms = t2.seconds() * 1000 / kReps;
    const auto cdec_ops = m.stats().top_ops / kReps;
    const auto cdec_steps = m.stats().recursive_steps / kReps;

    if (cu.toBfv() != fu) {
      std::printf("!! representations disagree at width %u\n", n);
      return;
    }
    log.push(JsonObject{}
                 .add("section", "union_ops")
                 .add("width", n)
                 .add("bfv_ops", bfv_ops)
                 .add("bfv_steps", bfv_steps)
                 .add("bfv_ms", bfv_ms)
                 .add("cdec_ops", cdec_ops)
                 .add("cdec_steps", cdec_steps)
                 .add("cdec_ms", cdec_ms));
    std::printf("%-6u | %10llu %10llu %9.3f | %10llu %10llu %9.3f\n", n,
                static_cast<unsigned long long>(bfv_ops),
                static_cast<unsigned long long>(bfv_steps), bfv_ms,
                static_cast<unsigned long long>(cdec_ops),
                static_cast<unsigned long long>(cdec_steps), cdec_ms);
  }
  hr(78);
}

void reachBackends(JsonLog& log, JsonLog& trace) {
  std::printf(
      "\nFig. 2 reachability, BFV backend vs conjunctive-decomposition "
      "backend\n"
      "%-10s | %10s %9s | %10s %9s\n",
      "circuit", "BFV t(s)", "Peak(K)", "CDEC t(s)", "Peak(K)");
  hr(60);
  const circuit::Netlist circuits[] = {
      circuit::makeTwinShift(12), circuit::makeFifoCtrl(3),
      circuit::makeJohnson(16), circuit::makeRandomSeq(12, 4, 60, 3)};
  for (const auto& n : circuits) {
    RunSpec a;
    a.engine = RunSpec::Engine::kBfv;
    a.opts.budget.max_seconds = 20.0;
    a.opts.trace = trace.enabled();
    RunSpec b = a;
    b.engine = RunSpec::Engine::kCdec;
    const circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};
    const reach::ReachResult ra = runOnce(n, order, a);
    const reach::ReachResult rb = runOnce(n, order, b);
    log.push(runObject(n.name(), order.label(), engineName(a.engine), ra));
    log.push(runObject(n.name(), order.label(), engineName(b.engine), rb));
    pushTrace(trace, n.name(), order.label(), engineName(a.engine), ra);
    pushTrace(trace, n.name(), order.label(), engineName(b.engine), rb);
    std::printf("%-10s | %10s %9s | %10s %9s\n", n.name().c_str(),
                timeCell(ra).c_str(), peakCell(ra).c_str(),
                timeCell(rb).c_str(), peakCell(rb).c_str());
  }
  hr(60);
  std::printf(
      "\nShape to compare with the paper: CDEC uses fewer operations per\n"
      "union (the §2.7 efficiency note) but carries the characteristic-\n"
      "function-sized prefix projections, so BFV wins peak size on the\n"
      "dependency-rich rows.\n");
}

}  // namespace

int main(int argc, char** argv) {
  JsonLog log = jsonLogFromArgs(argc, argv, "cdec_ablation");
  JsonLog trace = traceLogFromArgs(argc, argv, "cdec_ablation");
  unionOps(log);
  reachBackends(log, trace);
  return log.write() && trace.write() ? 0 : 1;
}
