#include "lz/genset.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace bfvr::lz {

void xorInto(Bits& a, const Bits& b) noexcept {
  const std::size_t n = b.size() < a.size() ? b.size() : a.size();
  for (std::size_t i = 0; i < n; ++i) a[i] ^= b[i];
}

bool isZero(const Bits& b) noexcept {
  for (Word w : b) {
    if (w != 0) return false;
  }
  return true;
}

unsigned lowestSetBit(const Bits& b) noexcept {
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] != 0) {
      return static_cast<unsigned>(i * 64 + std::countr_zero(b[i]));
    }
  }
  return ~0u;
}

GeneratorSet::GeneratorSet(unsigned dims)
    : dims_(dims), center_(wordsFor(dims), 0) {}

GeneratorSet::GeneratorSet(unsigned dims, Bits center)
    : dims_(dims), center_(std::move(center)) {
  center_.resize(wordsFor(dims), 0);
}

double GeneratorSet::count() const noexcept {
  return std::ldexp(1.0, static_cast<int>(rank()));
}

Bits GeneratorSet::reduceAgainst(Bits v) const {
  for (std::size_t i = 0; i < gens_.size(); ++i) {
    if (getBit(v, pivots_[i])) xorInto(v, gens_[i]);
  }
  return v;
}

bool GeneratorSet::addGenerator(Bits g) {
  g.resize(wordsFor(dims_), 0);
  g = reduceAgainst(std::move(g));
  if (isZero(g)) return false;
  const unsigned pivot = lowestSetBit(g);
  // Clear the new pivot column everywhere else (basis AND center), keeping
  // the representation canonical: the center is the unique coset member
  // with zeros in every pivot position.
  for (Bits& row : gens_) {
    if (getBit(row, pivot)) xorInto(row, g);
  }
  if (getBit(center_, pivot)) xorInto(center_, g);
  // Insert sorted by pivot.
  std::size_t at = 0;
  while (at < pivots_.size() && pivots_[at] < pivot) ++at;
  gens_.insert(gens_.begin() + static_cast<std::ptrdiff_t>(at), std::move(g));
  pivots_.insert(pivots_.begin() + static_cast<std::ptrdiff_t>(at), pivot);
  return true;
}

bool GeneratorSet::contains(const Bits& point) const {
  Bits t = point;
  t.resize(wordsFor(dims_), 0);
  xorInto(t, center_);
  return isZero(reduceAgainst(std::move(t)));
}

bool GeneratorSet::containsSet(const GeneratorSet& o) const {
  if (!contains(o.center_)) return false;
  for (const Bits& g : o.gens_) {
    if (!isZero(reduceAgainst(g))) return false;
  }
  return true;
}

bool GeneratorSet::sameSet(const GeneratorSet& o) const noexcept {
  return dims_ == o.dims_ && center_ == o.center_ && gens_ == o.gens_;
}

bool GeneratorSet::intersects(const GeneratorSet& o) const {
  GeneratorSet span(dims_);  // span(G_a) + span(G_b), centered at 0
  for (const Bits& g : gens_) span.addGenerator(g);
  for (const Bits& g : o.gens_) span.addGenerator(g);
  Bits diff = center_;
  xorInto(diff, o.center_);
  return span.contains(diff);
}

GeneratorSet GeneratorSet::xorOf(const GeneratorSet& a,
                                 const GeneratorSet& b) {
  if (a.dims_ != b.dims_) throw std::invalid_argument("lz: dims mismatch");
  Bits c = a.center_;
  xorInto(c, b.center_);
  GeneratorSet out(a.dims_, std::move(c));
  for (const Bits& g : a.gens_) out.addGenerator(g);
  for (const Bits& g : b.gens_) out.addGenerator(g);
  return out;
}

GeneratorSet GeneratorSet::notOf(const GeneratorSet& a) {
  GeneratorSet out = a;
  for (unsigned i = 0; i < a.dims_; ++i) {
    setBit(out.center_, i, !getBit(out.center_, i));
  }
  // Re-canonicalize: the flipped center may have picked up pivot bits.
  out.center_ = out.reduceAgainst(std::move(out.center_));
  return out;
}

GeneratorSet GeneratorSet::xnorOf(const GeneratorSet& a,
                                  const GeneratorSet& b) {
  return notOf(xorOf(a, b));
}

GeneratorSet GeneratorSet::andOf(const GeneratorSet& a, const GeneratorSet& b,
                                 bool* exact) {
  if (a.dims_ != b.dims_) throw std::invalid_argument("lz: dims mismatch");
  const std::size_t words = wordsFor(a.dims_);
  auto andRows = [words](const Bits& x, const Bits& y) {
    Bits r(words, 0);
    for (std::size_t i = 0; i < words; ++i) r[i] = x[i] & y[i];
    return r;
  };
  GeneratorSet out(a.dims_, andRows(a.center_, b.center_));
  for (const Bits& gb : b.gens_) out.addGenerator(andRows(a.center_, gb));
  for (const Bits& ga : a.gens_) out.addGenerator(andRows(ga, b.center_));
  for (const Bits& ga : a.gens_) {
    for (const Bits& gb : b.gens_) out.addGenerator(andRows(ga, gb));
  }
  // A singleton operand distributes through the other's XOR structure:
  // p & (c ^ sum b_i g_i) = (p&c) ^ sum b_i (p&g_i) — the rule above with
  // the cross terms vanishing, so the result is exact.
  if (exact != nullptr) *exact = a.rank() == 0 || b.rank() == 0;
  return out;
}

GeneratorSet GeneratorSet::orOf(const GeneratorSet& a, const GeneratorSet& b,
                                bool* exact) {
  return notOf(andOf(notOf(a), notOf(b), exact));
}

GeneratorSet GeneratorSet::unionHull(const GeneratorSet& a,
                                     const GeneratorSet& b, bool* exact) {
  if (a.dims_ != b.dims_) throw std::invalid_argument("lz: dims mismatch");
  if (a.containsSet(b)) {
    if (exact != nullptr) *exact = true;
    return a;
  }
  if (b.containsSet(a)) {
    if (exact != nullptr) *exact = true;
    return b;
  }
  GeneratorSet out(a.dims_, a.center_);
  for (const Bits& g : a.gens_) out.addGenerator(g);
  for (const Bits& g : b.gens_) out.addGenerator(g);
  Bits diff = a.center_;
  xorInto(diff, b.center_);
  out.addGenerator(std::move(diff));
  out.center_ = out.reduceAgainst(std::move(out.center_));
  if (exact != nullptr) {
    // Neither side contains the other, so |a AND b| < min(|a|, |b|) and
    // 2^ra + 2^rb - 2^ri factors as 2^ri * (even + even - 1): a power of
    // two only in the disjoint equal-rank case 2^r + 2^r = 2^(r+1).
    *exact = !a.intersects(b) && a.rank() == b.rank() &&
             out.rank() == a.rank() + 1;
  }
  return out;
}

}  // namespace bfvr::lz
