file(REMOVE_RECURSE
  "libbfvr_cdec.a"
)
