// Transition-function image by recursive range splitting (Coudert & Madre):
// the "Boolean functional vector -> characteristic function" conversion the
// Fig. 1 flow pays for on every iteration.
#pragma once

#include "sym/space.hpp"

namespace bfvr::sym {

/// Characteristic function, over the param (u) bank, of the range of the
/// next-state functions `deltas` (component order, over v and x) restricted
/// to the care set `care` (over v and x). Implements
///   Range(D) = u_1 & Range(D' |> d_1)  |  ~u_1 & Range(D' |> ~d_1)
/// with the generalized cofactor `constrain` and memoization on the
/// remaining vector.
Bdd rangeChar(const StateSpace& s, std::span<const Bdd> deltas,
              const Bdd& care);

}  // namespace bfvr::sym
