// Transition relations, clustering and image computation vs brute force.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "circuit/concrete_sim.hpp"
#include "circuit/generators.hpp"
#include "sym/transition.hpp"
#include "util/rng.hpp"

namespace bfvr::sym {
namespace {

using circuit::Netlist;
using circuit::OrderKind;

/// Brute-force one-step image of `from` (latch-order bit masks).
std::set<std::uint64_t> bruteImage(const Netlist& n,
                                   const std::set<std::uint64_t>& from) {
  const circuit::ConcreteSim sim(n);
  const std::size_t nl = n.latches().size();
  const std::size_t ni = n.inputs().size();
  std::set<std::uint64_t> img;
  for (std::uint64_t s : from) {
    std::vector<bool> sv(nl);
    for (std::size_t i = 0; i < nl; ++i) sv[i] = ((s >> i) & 1U) != 0;
    for (std::uint64_t iv = 0; iv < (std::uint64_t{1} << ni); ++iv) {
      std::vector<bool> in(ni);
      for (std::size_t i = 0; i < ni; ++i) in[i] = ((iv >> i) & 1U) != 0;
      const auto nx = sim.step(sv, in);
      std::uint64_t t = 0;
      for (std::size_t i = 0; i < nl; ++i) {
        if (nx[i]) t |= std::uint64_t{1} << i;
      }
      img.insert(t);
    }
  }
  return img;
}

/// chi over the current bank encoding the given latch-order state masks.
Bdd charOf(const StateSpace& s, const std::set<std::uint64_t>& states) {
  Manager& m = s.manager();
  Bdd chi = m.zero();
  for (std::uint64_t st : states) {
    Bdd cube = m.one();
    for (std::size_t p = 0; p < s.numLatches(); ++p) {
      const Bdd v = m.var(s.currentVar(p));
      cube &= ((st >> p) & 1U) != 0 ? v : ~v;
    }
    chi |= cube;
  }
  return chi;
}

std::set<std::uint64_t> statesOf(const StateSpace& s, const Bdd& chi) {
  Manager& m = s.manager();
  std::set<std::uint64_t> out;
  const std::size_t nl = s.numLatches();
  std::vector<bool> assignment(m.numVars(), false);
  for (std::uint64_t st = 0; st < (std::uint64_t{1} << nl); ++st) {
    for (std::size_t p = 0; p < nl; ++p) {
      assignment[s.currentVar(p)] = ((st >> p) & 1U) != 0;
    }
    if (m.eval(chi, assignment)) out.insert(st);
  }
  return out;
}

class ImageSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ImageSweep, PartitionedImageMatchesBruteForce) {
  const std::size_t cluster_limit = GetParam();
  bfvr::Rng rng(cluster_limit * 3 + 11);
  const Netlist circuits[] = {circuit::makeCounter(4, 11),
                              circuit::makeJohnson(4),
                              circuit::makeArbiter(3),
                              circuit::makeRandomSeq(5, 2, 25, 8)};
  for (const Netlist& n : circuits) {
    bdd::Manager m(0);
    StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
    TransitionOptions topts;
    topts.cluster_limit = cluster_limit;
    const TransitionRelation tr(s, topts);
    for (int trial = 0; trial < 5; ++trial) {
      std::set<std::uint64_t> from;
      const std::size_t nl = n.latches().size();
      for (int k = 0; k < 3; ++k) {
        from.insert(rng.next() & ((std::uint64_t{1} << nl) - 1));
      }
      const Bdd img = tr.image(charOf(s, from));
      EXPECT_EQ(statesOf(s, img), bruteImage(n, from)) << n.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterLimits, ImageSweep,
                         ::testing::Values(0U, 1U, 100U, 100000U));

TEST(Transition, MonolithicAndPartitionedAgree) {
  const Netlist n = circuit::makeFifoCtrl(2);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  TransitionOptions mono;
  mono.cluster_limit = 0;
  TransitionOptions part;
  part.cluster_limit = 50;
  const TransitionRelation t1(s, mono);
  const TransitionRelation t2(s, part);
  EXPECT_EQ(t1.numClusters(), 1U);
  EXPECT_GT(t2.numClusters(), 1U);
  const Bdd from = initialChar(s);
  EXPECT_EQ(t1.image(from), t2.image(from));
  // And from a richer set.
  const Bdd all = m.one();
  EXPECT_EQ(t1.image(all), t2.image(all));
}

TEST(Transition, InitialCharIsTheSingleInitialState) {
  const Netlist n = circuit::makeLfsr(4);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const Bdd chi = initialChar(s);
  EXPECT_DOUBLE_EQ(m.satCount(chi, s.numLatches()), 1.0);
  EXPECT_EQ(statesOf(s, chi), (std::set<std::uint64_t>{1}));
}

TEST(Transition, ImageOfEmptyIsEmpty) {
  const Netlist n = circuit::makeCounter(3, 8);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const TransitionRelation tr(s);
  EXPECT_TRUE(tr.image(m.zero()).isFalse());
}

TEST(Transition, SharedSizeIsPositive) {
  const Netlist n = circuit::makeJohnson(3);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const TransitionRelation tr(s);
  EXPECT_GT(tr.sharedSize(), 1U);
}

}  // namespace
}  // namespace bfvr::sym
