// Shared JSON writer for machine-readable outputs: bench summaries
// (BENCH_*.json), per-iteration trace reports (TRACE_*.json, see
// obs/report.hpp) and anything else that wants a line-stable, dependency-
// free serialization.
//
// Promoted from the bench harness so the observability layer, the job
// runner and the benches all use one writer (the bench-side glue lives in
// bench/support.hpp).
//
// Deliberately tiny: an ordered field builder and an array-file writer, no
// external dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace bfvr::util {

/// Ordered JSON object builder. Field order follows insertion order, so
/// diffs between bench runs stay line-stable.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& v) {
    return addRaw(key, quote(v));
  }
  JsonObject& add(const std::string& key, const char* v) {
    return addRaw(key, quote(v));
  }
  JsonObject& add(const std::string& key, bool v) {
    return addRaw(key, v ? "true" : "false");
  }
  JsonObject& add(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return addRaw(key, buf);
  }
  JsonObject& add(const std::string& key, std::uint64_t v) {
    return addRaw(key, std::to_string(v));
  }
  JsonObject& add(const std::string& key, unsigned v) {
    return addRaw(key, std::to_string(v));
  }
  JsonObject& add(const std::string& key, int v) {
    return addRaw(key, std::to_string(v));
  }
  /// Nested object / array: `v` must already be valid JSON.
  JsonObject& addRaw(const std::string& key, const std::string& v) {
    body_ += body_.empty() ? "" : ", ";
    body_ += quote(key) + ": " + v;
    return *this;
  }

  std::string str() const { return "{" + body_ + "}"; }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out + "\"";
  }

 private:
  std::string body_;
};

/// Renders a sequence of values as a JSON array string, one serialized
/// element at a time (each `push` argument must already be valid JSON).
inline std::string jsonArray(const std::vector<std::string>& elems) {
  std::string out = "[";
  for (std::size_t i = 0; i < elems.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += elems[i];
  }
  return out + "]";
}

/// Accumulates run objects and writes them as a JSON array. A default-
/// constructed (disabled) log swallows writes, so benches can log
/// unconditionally.
class JsonLog {
 public:
  JsonLog() = default;
  explicit JsonLog(std::string path) : path_(std::move(path)) {}

  bool enabled() const noexcept { return !path_.empty(); }
  void push(const JsonObject& o) {
    if (enabled()) entries_.push_back(o.str());
  }
  /// Push an already-serialized JSON value (object or array).
  void push(std::string raw) {
    if (enabled()) entries_.push_back(std::move(raw));
  }

  /// Write the array file; returns false (with a stderr note) on IO error.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", entries_[i].c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("wrote %s (%zu runs)\n", path_.c_str(), entries_.size());
    return true;
  }

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::vector<std::string> entries_;
};

/// Parse `<flag>` / `<flag>=path` out of argv; returns a JsonLog on
/// `default_path` (or the given path), or a disabled log when the flag is
/// absent.
inline JsonLog jsonLogFromFlag(int argc, char** argv, const std::string& flag,
                               const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag) return JsonLog(default_path);
    if (arg.rfind(flag + "=", 0) == 0) {
      return JsonLog(arg.substr(flag.size() + 1));
    }
  }
  return JsonLog();
}

}  // namespace bfvr::util
