file(REMOVE_RECURSE
  "libbfvr_sym.a"
)
