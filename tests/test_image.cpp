// Recursive range splitting (the Fig. 1 BFV -> chi conversion).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuit/generators.hpp"
#include "circuit/orders.hpp"
#include "support/brute.hpp"
#include "sym/image.hpp"
#include "sym/simulate.hpp"
#include "sym/transition.hpp"

namespace bfvr::sym {
namespace {

using circuit::OrderKind;

TEST(RangeChar, MatchesTransitionRelationImage) {
  // The range of delta(v, x) constrained to a care set equals the TR image
  // of that care set.
  bfvr::Rng rng(3);
  const circuit::Netlist circuits[] = {
      circuit::makeCounter(4, 9), circuit::makeJohnson(4),
      circuit::makeTwinShift(3), circuit::makeRandomSeq(5, 2, 20, 5)};
  for (const auto& n : circuits) {
    bdd::Manager m(0);
    StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
    const TransitionRelation tr(s);
    const std::vector<Bdd> delta = transitionFunctions(s);
    for (int trial = 0; trial < 4; ++trial) {
      // Random care set over the current bank.
      Bdd care = m.zero();
      for (int k = 0; k < 3; ++k) {
        Bdd cube = m.one();
        for (std::size_t p = 0; p < s.numLatches(); ++p) {
          const Bdd v = m.var(s.currentVar(p));
          cube &= rng.flip() ? v : ~v;
        }
        care |= cube;
      }
      const Bdd img_u = rangeChar(s, delta, care);
      const Bdd img = m.permute(img_u, s.permParamToCurrent());
      EXPECT_EQ(img, tr.image(care)) << n.name();
    }
  }
}

TEST(RangeChar, EmptyCareGivesEmptyImage) {
  const auto n = circuit::makeCounter(3, 8);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  const std::vector<Bdd> delta = transitionFunctions(s);
  EXPECT_TRUE(rangeChar(s, delta, m.zero()).isFalse());
}

TEST(RangeChar, ConstantVectorGivesSingleton) {
  const auto n = circuit::makeCounter(3, 8);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  std::vector<Bdd> consts{m.one(), m.zero(), m.one()};
  const Bdd chi = rangeChar(s, consts, m.one());
  EXPECT_DOUBLE_EQ(m.satCount(chi, m.numVars()) /
                       std::pow(2.0, m.numVars() - 3),
                   1.0);
  std::vector<bool> assignment(m.numVars(), false);
  assignment[s.paramVars()[0]] = true;
  assignment[s.paramVars()[2]] = true;
  EXPECT_TRUE(m.eval(chi, assignment));
}

TEST(RangeChar, IdentityVectorGivesUniverse) {
  const auto n = circuit::makeJohnson(3);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kNatural, 0}));
  std::vector<Bdd> ident;
  for (unsigned v : s.currentVars()) ident.push_back(m.var(v));
  const Bdd chi = rangeChar(s, ident, m.one());
  // Range of the identity over all states is everything (over u).
  Bdd expect = m.one();
  EXPECT_EQ(chi, expect);
}

TEST(RangeChar, AgreesWithReparameterizedBfv) {
  // The two halves of the paper's comparison compute the same set: the
  // recursive-splitting chi must equal the canonical BFV's chi.
  const auto n = circuit::makeFifoCtrl(2);
  bdd::Manager m(0);
  StateSpace s(m, n, circuit::makeOrder(n, {OrderKind::kTopo, 0}));
  const std::vector<Bdd> delta = transitionFunctions(s);
  std::vector<unsigned> params = s.currentVars();
  params.insert(params.end(), s.inputVars().begin(), s.inputVars().end());
  const bfv::Bfv f =
      bfv::reparameterize(m, delta, s.paramVars(), params);
  EXPECT_EQ(rangeChar(s, delta, m.one()), f.toChar());
}

}  // namespace
}  // namespace bfvr::sym
