#include "reach/ctl.hpp"

#include <unordered_map>

namespace bfvr::reach {

namespace {

std::shared_ptr<const Ctl::Node> mk(Ctl::Node n) {
  return std::make_shared<const Ctl::Node>(std::move(n));
}

}  // namespace

Ctl Ctl::top() { return Ctl(mk({CtlOp::kTrue, {}, nullptr, nullptr})); }

Ctl Ctl::bottom() { return !top(); }

Ctl Ctl::atom(Bdd chi) {
  return Ctl(mk({CtlOp::kAtom, std::move(chi), nullptr, nullptr}));
}

Ctl Ctl::operator!() const {
  return Ctl(mk({CtlOp::kNot, {}, node_, nullptr}));
}

Ctl Ctl::operator&&(const Ctl& o) const {
  return Ctl(mk({CtlOp::kAnd, {}, node_, o.node_}));
}

Ctl Ctl::operator||(const Ctl& o) const {
  return Ctl(mk({CtlOp::kOr, {}, node_, o.node_}));
}

Ctl Ctl::EX(Ctl p) { return Ctl(mk({CtlOp::kEX, {}, p.node_, nullptr})); }

Ctl Ctl::EU(Ctl p, Ctl q) {
  return Ctl(mk({CtlOp::kEU, {}, p.node_, q.node_}));
}

Ctl Ctl::EF(Ctl p) { return EU(top(), std::move(p)); }

Ctl Ctl::EG(Ctl p) { return Ctl(mk({CtlOp::kEG, {}, p.node_, nullptr})); }

Ctl Ctl::AX(Ctl p) { return !EX(!std::move(p)); }

Ctl Ctl::AF(Ctl p) { return !EG(!std::move(p)); }

Ctl Ctl::AG(Ctl p) { return !EF(!std::move(p)); }

Ctl Ctl::AU(Ctl p, Ctl q) {
  // A[p U q] == !( E[!q U (!p & !q)] | EG !q ).
  const Ctl nq = !q;
  return !(EU(nq, !p && nq) || EG(nq));
}

namespace {

struct Evaluator {
  sym::StateSpace& s;
  const sym::TransitionRelation& tr;
  bdd::Manager& m;
  std::unordered_map<const Ctl::Node*, Bdd> memo;

  Bdd run(const Ctl::Node& n) {
    if (auto it = memo.find(&n); it != memo.end()) return it->second;
    Bdd r;
    switch (n.op) {
      case CtlOp::kTrue:
        r = m.one();
        break;
      case CtlOp::kAtom:
        r = n.chi;
        break;
      case CtlOp::kNot:
        r = ~run(*n.lhs);
        break;
      case CtlOp::kAnd:
        r = run(*n.lhs) & run(*n.rhs);
        break;
      case CtlOp::kOr:
        r = run(*n.lhs) | run(*n.rhs);
        break;
      case CtlOp::kEX:
        r = tr.preimage(run(*n.lhs));
        break;
      case CtlOp::kEG: {
        // gfp Z. p & EX Z
        const Bdd p = run(*n.lhs);
        Bdd z = p;
        for (;;) {
          const Bdd next = p & tr.preimage(z);
          if (next == z) break;
          z = next;
          m.maybeGc();
        }
        r = z;
        break;
      }
      case CtlOp::kEU: {
        // lfp Z. q | (p & EX Z)
        const Bdd p = run(*n.lhs);
        const Bdd q = run(*n.rhs);
        Bdd z = q;
        for (;;) {
          const Bdd next = q | (p & tr.preimage(z));
          if (next == z) break;
          z = next;
          m.maybeGc();
        }
        r = z;
        break;
      }
    }
    memo.emplace(&n, r);
    return r;
  }
};

}  // namespace

Bdd evalCtl(sym::StateSpace& s, const sym::TransitionRelation& tr,
            const Ctl& f) {
  Evaluator ev{s, tr, s.manager(), {}};
  return ev.run(f.node());
}

bool holdsInInit(sym::StateSpace& s, const sym::TransitionRelation& tr,
                 const Ctl& f) {
  const Bdd sat = evalCtl(s, tr, f);
  const std::vector<bool> init = s.initialBits();
  std::vector<bool> assignment(s.manager().numVars(), false);
  for (std::size_t c = 0; c < init.size(); ++c) {
    assignment[s.currentVars()[c]] = init[c];
  }
  return s.manager().eval(sat, assignment);
}

}  // namespace bfvr::reach
