// Invariant (safety) checking on top of the Fig. 2 flow — the paper's
// stated future work ("we would like to develop a symbolic simulation
// based model checker"). Reachability runs on Boolean functional vectors;
// the bad-state predicate is intersected with each new frontier (§2.4), so
// violations terminate the traversal early; a concrete counterexample
// trace is reconstructed from the onion rings.
#pragma once

#include <optional>

#include "reach/engine.hpp"

namespace bfvr::reach {

/// One step of a counterexample: the state the circuit was in (latch
/// order) and the inputs applied (input order).
struct TraceStep {
  std::vector<bool> state;
  std::vector<bool> inputs;
};

struct InvariantResult {
  RunStatus status = RunStatus::kDone;
  bool holds = false;
  unsigned iterations = 0;
  double seconds = 0.0;
  std::size_t peak_live_nodes = 0;
  /// When violated: states[0] is the initial state; applying inputs[i] to
  /// states[i] yields states[i+1]; the last state satisfies the bad
  /// predicate. Empty when the invariant holds.
  std::vector<TraceStep> trace;
  /// The violating state itself (latch order), when found.
  std::optional<std::vector<bool>> bad_state;
};

/// Check AG !bad. `bad` is a characteristic function over the current-state
/// variables of `s`. Traversal uses the BFV flow of Fig. 2 and stops at the
/// first frontier intersecting `bad`.
InvariantResult checkInvariant(sym::StateSpace& s, const Bdd& bad,
                               const ReachOptions& opts = {});

}  // namespace bfvr::reach
