#include "circuit/concrete_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace bfvr::circuit {

ConcreteSim::ConcreteSim(const Netlist& n) : n_(n), topo_(n.topoOrder()) {}

std::vector<bool> ConcreteSim::evalAll(const std::vector<bool>& state,
                                       const std::vector<bool>& inputs) const {
  if (state.size() != n_.latches().size() ||
      inputs.size() != n_.inputs().size()) {
    throw std::invalid_argument("ConcreteSim: wrong vector widths");
  }
  std::vector<bool> val(n_.numSignals(), false);
  for (std::size_t i = 0; i < n_.inputs().size(); ++i) {
    val[n_.inputs()[i]] = inputs[i];
  }
  for (std::size_t p = 0; p < n_.latches().size(); ++p) {
    val[n_.latches()[p]] = state[p];
  }
  std::vector<bool> fanin_vals;
  for (SignalId id : topo_) {
    const Gate& g = n_.gate(id);
    if (isSource(g.op)) {
      if (g.op == GateOp::kConst1) val[id] = true;
      continue;
    }
    fanin_vals.clear();
    for (SignalId f : g.fanins) fanin_vals.push_back(val[f]);
    val[id] = evalGate(g.op, fanin_vals);
  }
  return val;
}

std::vector<bool> ConcreteSim::step(const std::vector<bool>& state,
                                    const std::vector<bool>& inputs) const {
  const std::vector<bool> val = evalAll(state, inputs);
  std::vector<bool> next(n_.latches().size());
  for (std::size_t p = 0; p < n_.latches().size(); ++p) {
    next[p] = val[n_.latchData(p)];
  }
  return next;
}

std::vector<bool> ConcreteSim::outputs(const std::vector<bool>& state,
                                       const std::vector<bool>& inputs) const {
  const std::vector<bool> val = evalAll(state, inputs);
  std::vector<bool> out(n_.outputs().size());
  for (std::size_t i = 0; i < n_.outputs().size(); ++i) {
    out[i] = val[n_.outputs()[i]];
  }
  return out;
}

std::vector<bool> ConcreteSim::initialState() const {
  std::vector<bool> s(n_.latches().size());
  for (std::size_t p = 0; p < n_.latches().size(); ++p) {
    s[p] = n_.latchInit(p);
  }
  return s;
}

std::optional<std::vector<std::uint64_t>> explicitReach(const Netlist& n,
                                                        std::size_t limit) {
  const std::size_t nl = n.latches().size();
  const std::size_t ni = n.inputs().size();
  if (nl > 24 || ni > 20) {
    throw std::invalid_argument("explicitReach: circuit too wide");
  }
  const ConcreteSim sim(n);
  auto pack = [nl](const std::vector<bool>& s) {
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < nl; ++i) {
      if (s[i]) x |= std::uint64_t{1} << i;
    }
    return x;
  };
  auto unpack = [nl](std::uint64_t x) {
    std::vector<bool> s(nl);
    for (std::size_t i = 0; i < nl; ++i) s[i] = ((x >> i) & 1U) != 0;
    return s;
  };
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> frontier{pack(sim.initialState())};
  seen.insert(frontier[0]);
  std::vector<bool> in(ni);
  while (!frontier.empty()) {
    std::vector<std::uint64_t> next_frontier;
    for (std::uint64_t s : frontier) {
      const std::vector<bool> sv = unpack(s);
      for (std::uint64_t iv = 0; iv < (std::uint64_t{1} << ni); ++iv) {
        for (std::size_t j = 0; j < ni; ++j) in[j] = ((iv >> j) & 1U) != 0;
        const std::uint64_t t = pack(sim.step(sv, in));
        if (seen.insert(t).second) {
          if (seen.size() > limit) return std::nullopt;
          next_frontier.push_back(t);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  std::vector<std::uint64_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bfvr::circuit
