
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/cofactor.cpp" "src/CMakeFiles/bfvr_bdd.dir/bdd/cofactor.cpp.o" "gcc" "src/CMakeFiles/bfvr_bdd.dir/bdd/cofactor.cpp.o.d"
  "/root/repo/src/bdd/compose.cpp" "src/CMakeFiles/bfvr_bdd.dir/bdd/compose.cpp.o" "gcc" "src/CMakeFiles/bfvr_bdd.dir/bdd/compose.cpp.o.d"
  "/root/repo/src/bdd/count.cpp" "src/CMakeFiles/bfvr_bdd.dir/bdd/count.cpp.o" "gcc" "src/CMakeFiles/bfvr_bdd.dir/bdd/count.cpp.o.d"
  "/root/repo/src/bdd/dot.cpp" "src/CMakeFiles/bfvr_bdd.dir/bdd/dot.cpp.o" "gcc" "src/CMakeFiles/bfvr_bdd.dir/bdd/dot.cpp.o.d"
  "/root/repo/src/bdd/manager.cpp" "src/CMakeFiles/bfvr_bdd.dir/bdd/manager.cpp.o" "gcc" "src/CMakeFiles/bfvr_bdd.dir/bdd/manager.cpp.o.d"
  "/root/repo/src/bdd/ops.cpp" "src/CMakeFiles/bfvr_bdd.dir/bdd/ops.cpp.o" "gcc" "src/CMakeFiles/bfvr_bdd.dir/bdd/ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
