// Portfolio mode: race one circuit under several engines, first conclusive
// winner cancels the rest. The cancel propagates on the worker thread of
// the winning job (on_done fires before its future is fulfilled), so the
// losers' cancel latency is one interrupt-poll interval — an iteration
// boundary or kInterruptStride node allocations, whichever comes first —
// plus nothing else: no controller wake-up is on the path.
#include "run/run.hpp"
#include "util/stats.hpp"

namespace bfvr::run {

PortfolioResult runPortfolio(WorkerPool& pool, const JobSpec& base,
                             std::span<const EngineKind> engines) {
  PortfolioResult out;
  if (engines.empty()) return out;
  const Timer timer;
  auto token = std::make_shared<CancelToken>();
  // Finish-order winner election: the first worker whose job concludes
  // kDone claims the slot and cancels everyone else. shared_ptr keeps the
  // flag alive for stragglers' callbacks even past this frame (belt and
  // braces; we block on every future below anyway).
  auto winner = std::make_shared<std::atomic<int>>(-1);

  std::vector<std::future<JobResult>> futures;
  futures.reserve(engines.size());
  for (std::size_t i = 0; i < engines.size(); ++i) {
    JobSpec spec = base;
    spec.engine = engines[i];
    spec.name = base.displayName() + "/" + to_string(engines[i]);
    const int index = static_cast<int>(i);
    futures.push_back(pool.submit(
        std::move(spec), token, [token, winner, index](const JobResult& r) {
          if (r.status != RunStatus::kDone) return;
          int expected = -1;
          if (winner->compare_exchange_strong(expected, index)) {
            token->cancel();
          }
        }));
  }
  out.jobs.reserve(futures.size());
  for (std::future<JobResult>& f : futures) out.jobs.push_back(f.get());
  out.winner = winner->load();
  out.seconds = timer.seconds();
  return out;
}

}  // namespace bfvr::run
