// resumeReach: restart a checkpointed fixpoint. Loads the file into the
// state space's manager (io::load also restores the recorded variable
// order), rebuilds the engine's loop state (reached set + frontier +
// iteration count) and re-enters the engine that wrote the checkpoint via
// ReachOptions::resume. Correctness of the bit-identical claim: the
// reached-set sequence reached_{k+1} = reached_k U Img(from_k) depends only
// on the (reached, from) pair — which the checkpoint captures exactly — so
// the continued run walks the same sets, fixpoint test and iteration count
// as the uninterrupted one.
#include "io/checkpoint.hpp"
#include "reach/engine.hpp"

namespace bfvr::reach {

namespace {

ReachResult resumeFrom(sym::StateSpace& s, const io::Checkpoint& c,
                       const ReachOptions& opts) {
  Manager& m = s.manager();
  ResumePoint rp;
  rp.iteration = c.iteration;
  ReachOptions o = opts;
  o.resume = &rp;

  switch (c.kind) {
    case io::RootKind::kChi: {
      if (c.reached.size() != 1 || c.frontier.size() != 1) {
        throw io::Error("checkpoint: expected one root per set");
      }
      rp.reached_chi = c.reached[0];
      rp.from_chi = c.frontier[0];
      if (c.engine == "tr") return reachTr(s, o);
      if (c.engine == "cbm") return reachCbm(s, o);
      if (c.engine == "hybrid") return reachHybrid(s, o);
      throw io::Error("checkpoint: unknown chi engine '" + c.engine + "'");
    }
    case io::RootKind::kBfv: {
      if (c.engine != "bfv") {
        throw io::Error("checkpoint: unknown bfv engine '" + c.engine + "'");
      }
      rp.reached_bfv =
          c.reached_empty
              ? Bfv::emptySet(m, c.choice_vars)
              : Bfv::fromComponents(m, c.choice_vars, c.reached,
                                    /*trusted=*/true);
      rp.from_bfv = c.frontier_empty
                        ? Bfv::emptySet(m, c.choice_vars)
                        : Bfv::fromComponents(m, c.choice_vars, c.frontier,
                                              /*trusted=*/true);
      o.backend = SetBackend::kBfv;
      return reachBfv(s, o);
    }
    case io::RootKind::kCdec: {
      if (c.engine != "cdec") {
        throw io::Error("checkpoint: unknown cdec engine '" + c.engine + "'");
      }
      rp.reached_cdec =
          c.reached_empty
              ? cdec::Cdec::emptySet(m, c.choice_vars)
              : cdec::Cdec::fromConstraints(m, c.choice_vars, c.reached);
      rp.from_cdec =
          c.frontier_empty
              ? cdec::Cdec::emptySet(m, c.choice_vars)
              : cdec::Cdec::fromConstraints(m, c.choice_vars, c.frontier);
      o.backend = SetBackend::kCdec;
      return reachBfv(s, o);
    }
  }
  throw io::Error("checkpoint: unknown root kind");
}

}  // namespace

ReachResult resumeReach(sym::StateSpace& s, const std::string& checkpoint_path,
                        const ReachOptions& opts) {
  return resumeFrom(s, io::load(checkpoint_path, s.manager()), opts);
}

ReachResult resumeReach(sym::StateSpace& s, std::span<const std::uint8_t> image,
                        const ReachOptions& opts) {
  return resumeFrom(s, io::decode(image.data(), image.size(), s.manager()),
                    opts);
}

}  // namespace bfvr::reach
