// Experiment: Fig. 1 vs Fig. 2 — the cost of converting between set
// representations. The Coudert/Berthet/Madre flow (Fig. 1) simulates like
// the BFV flow but converts chi -> BFV and BFV -> chi on every iteration;
// the paper's flow (Fig. 2) never leaves the functional-vector world. The
// monolithic and IWLS95-partitioned transition-relation engines complete
// the comparison, and the logical-zonotope engine (src/lz) adds the
// non-BDD representation: exact on the XOR-affine circuits, a sound
// inconclusive over-approximation elsewhere.
#include "support.hpp"

using namespace bfvr;
using namespace bfvr::bench;

int main(int argc, char** argv) {
  JsonLog log = jsonLogFromArgs(argc, argv, "flows");
  JsonLog trace = traceLogFromArgs(argc, argv, "flows");
  const circuit::Netlist circuits[] = {
      circuit::makeJohnson(16), circuit::makeTwinShift(12),
      circuit::makeFifoCtrl(3), circuit::makeLfsr(10),
      circuit::makeRandomSeq(12, 4, 60, 7)};
  const RunSpec::Engine engines[] = {
      RunSpec::Engine::kTrMono, RunSpec::Engine::kTr, RunSpec::Engine::kCbm,
      RunSpec::Engine::kBfv};

  std::printf("Fig. 1 vs Fig. 2 flows (order = topo)\n");
  std::printf("%-12s %-10s %10s %9s %6s %10s\n", "circuit", "engine",
              "time(s)", "Peak(K)", "iters", "states");
  hr(64);
  for (const auto& n : circuits) {
    for (const RunSpec::Engine e : engines) {
      RunSpec spec;
      spec.engine = e;
      spec.opts.budget.max_seconds = 30.0;
      spec.opts.budget.max_live_nodes = 1000000;
      spec.opts.trace = trace.enabled();
      const circuit::OrderSpec order{circuit::OrderKind::kTopo, 0};
      const reach::ReachResult r = runOnce(n, order, spec);
      log.push(runObject(n.name(), order.label(), engineName(e), r));
      pushTrace(trace, n.name(), order.label(), engineName(e), r);
      char states[32];
      if (r.status == RunStatus::kDone) {
        std::snprintf(states, sizeof states, "%.0f", r.states);
      } else {
        std::snprintf(states, sizeof states, "-");
      }
      std::printf("%-12s %-10s %10s %9s %6u %10s\n", n.name().c_str(),
                  engineName(e), timeCell(r).c_str(), peakCell(r).c_str(),
                  r.iterations, states);
    }
    const lz::LzResult z = runLzOnce(n, 30.0);
    log.push(lzRunObject(n.name(), z));
    std::printf("%-12s %-10s %10s %9s %6u %10s\n", n.name().c_str(), "LZ",
                lzTimeCell(z).c_str(), "-", z.iterations,
                lzStatesCell(z).c_str());
    hr(64);
  }
  std::printf(
      "\nShape to compare with the paper: wherever the set representation\n"
      "matters (twin12), CBM-Fig1 pays the per-iteration conversions\n"
      "(\"the conversion between the two representations is costly\", §1)\n"
      "and BFV-Fig2 wins; on small or long-diameter circuits the BFV\n"
      "flow's re-parameterization overhead dominates and the chi engines\n"
      "lead — the same mixed outcome as the paper's Table 2.\n");
  return log.write() && trace.write() ? 0 : 1;
}
