// Conversions between characteristic functions and canonical BFVs — the
// operations the Fig. 1 flow pays for on every iteration.
#include <gtest/gtest.h>

#include "support/brute.hpp"

namespace bfvr::bfv {
namespace {

using test::Set;

const std::vector<unsigned> kVars{0, 1, 2, 3};

class ConvertSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConvertSweep, RoundTripThroughChar) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 449 + 3);
  Manager m(4);
  Set s = test::randomSet(rng, 4, 1, 2);
  const Bfv f = test::bfvOf(m, kVars, s);
  const Bdd chi = f.toChar();
  EXPECT_DOUBLE_EQ(m.satCount(chi, 4), static_cast<double>(s.size()));
  const Bfv back = fromChar(m, chi, kVars);
  EXPECT_EQ(back, f);
}

TEST_P(ConvertSweep, FromCharMatchesMembers) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 631 + 7);
  Manager m(4);
  const std::uint64_t tt = test::randomTruth(rng, 4);
  const Bdd chi = test::bddFromTruth(m, kVars, tt);
  const Bfv f = fromChar(m, chi, kVars);
  Set want;
  for (unsigned a = 0; a < 16; ++a) {
    if (((tt >> a) & 1U) != 0) want.insert(a);
  }
  if (want.empty()) {
    EXPECT_TRUE(f.isEmpty());
  } else {
    std::string why;
    EXPECT_TRUE(f.checkCanonical(&why)) << why;
    EXPECT_EQ(test::setOf(f), want);
    EXPECT_EQ(f.toChar(), chi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvertSweep, ::testing::Range(0, 25));

TEST(BfvConvert, FromCharOfConstants) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  EXPECT_TRUE(fromChar(m, m.zero(), vars).isEmpty());
  EXPECT_EQ(fromChar(m, m.one(), vars), Bfv::universe(m, vars));
}

TEST(BfvConvert, FromCharOfCube) {
  Manager m(3);
  const std::vector<unsigned> vars{0, 1, 2};
  const Bdd chi = m.var(0) & ~m.var(2);
  const Bfv f = fromChar(m, chi, vars);
  const signed char cube[] = {1, -1, 0};
  EXPECT_EQ(f, Bfv::cubeSet(m, vars, cube));
}

TEST(BfvConvert, ToCharIsConjunctiveDecompositionIdentity) {
  // §2.7: chi == AND_i (v_i XNOR f_i) for canonical vectors.
  Manager m(4);
  Rng rng(91);
  const Set s = test::randomSet(rng, 4, 1, 2);
  if (s.empty()) GTEST_SKIP();
  const Bfv f = test::bfvOf(m, kVars, s);
  Bdd chi = m.one();
  for (unsigned i = 0; i < 4; ++i) {
    chi &= m.xnorB(m.var(kVars[i]), f.comps()[i]);
  }
  EXPECT_EQ(chi, f.toChar());
}

TEST(BfvConvert, FunctionalDependenciesFactorOut) {
  // chi = (v0 == v1) & (v2 == v3): the BFV represents the dependent bits
  // as copies, staying linear where chi pairs variables.
  Manager m(4);
  const Bdd chi = m.xnorB(m.var(0), m.var(1)) & m.xnorB(m.var(2), m.var(3));
  const Bfv f = fromChar(m, chi, kVars);
  EXPECT_EQ(f.comps()[0], m.var(0));
  EXPECT_EQ(f.comps()[1], m.var(0));  // forced copy of component 0
  EXPECT_EQ(f.comps()[2], m.var(2));
  EXPECT_EQ(f.comps()[3], m.var(2));
  EXPECT_LE(f.sharedSize(), 3U);
}

TEST(BfvConvert, CountStatesAgreesWithSatCount) {
  Manager m(4);
  Rng rng(5);
  for (int t = 0; t < 10; ++t) {
    const Set s = test::randomSet(rng, 4, 1, 2);
    if (s.empty()) continue;
    const Bfv f = test::bfvOf(m, kVars, s);
    EXPECT_DOUBLE_EQ(f.countStates(), static_cast<double>(s.size()));
  }
}


TEST(BfvConvert, ReorderComponentsPreservesTheSet) {
  Manager m(4);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Set s = test::randomSet(rng, 4, 1, 2);
    if (s.empty()) s.insert(3);
    const Bfv f = test::bfvOf(m, kVars, s);
    // Reverse the component order, onto the same variables.
    const unsigned perm[] = {3, 2, 1, 0};
    const Bfv g = reorderComponents(f, perm, kVars);
    std::string why;
    ASSERT_TRUE(g.checkCanonical(&why)) << why;
    // New component j carries old component perm[j]: members have their
    // coordinates reversed.
    Set expect;
    for (std::uint64_t x : s) {
      std::uint64_t y = 0;
      for (unsigned j = 0; j < 4; ++j) {
        if (((x >> perm[j]) & 1U) != 0) y |= std::uint64_t{1} << j;
      }
      expect.insert(y);
    }
    EXPECT_EQ(test::setOf(g), expect);
    // Reordering back round-trips.
    EXPECT_EQ(reorderComponents(g, perm, kVars), f);
  }
}

TEST(BfvConvert, ReorderComponentsIdentityPermutation) {
  Manager m(4);
  Rng rng(3);
  const Set s = test::randomSet(rng, 4, 1, 2);
  if (s.empty()) GTEST_SKIP();
  const Bfv f = test::bfvOf(m, kVars, s);
  const unsigned perm[] = {0, 1, 2, 3};
  EXPECT_EQ(reorderComponents(f, perm, kVars), f);
}

TEST(BfvConvert, ReorderComponentsOntoFreshVariables) {
  Manager m(8);
  const std::vector<unsigned> old_vars{0, 1, 2, 3};
  const std::vector<unsigned> new_vars{4, 5, 6, 7};
  const Bfv f = Bfv::point(m, old_vars, {true, false, true, true});
  const unsigned perm[] = {1, 0, 3, 2};
  const Bfv g = reorderComponents(f, perm, new_vars);
  EXPECT_EQ(g, Bfv::point(m, new_vars, {false, true, true, true}));
}

TEST(BfvConvert, ReorderComponentsValidatesArguments) {
  Manager m(4);
  const Bfv f = Bfv::universe(m, kVars);
  const unsigned not_perm[] = {0, 0, 1, 2};
  EXPECT_THROW((void)reorderComponents(f, not_perm, kVars),
               std::invalid_argument);
  const unsigned short_perm[] = {0, 1};
  EXPECT_THROW((void)reorderComponents(f, short_perm, kVars),
               std::invalid_argument);
  EXPECT_TRUE(
      reorderComponents(Bfv::emptySet(m, kVars),
                        std::vector<unsigned>{0, 1, 2, 3}, kVars)
          .isEmpty());
}

TEST(BfvConvert, ReorderCanChangeSharedSize) {
  // Pairing structure: a set where adjacent components are coupled is
  // small; interleaving the coupled pairs apart grows the vector — the
  // size sensitivity the paper's future-work reordering aims to exploit.
  Manager m(8);
  const std::vector<unsigned> vars{0, 1, 2, 3, 4, 5};
  bdd::Bdd chi = m.one();
  chi &= m.xnorB(m.var(0), m.var(1));
  chi &= m.xnorB(m.var(2), m.var(3));
  chi &= m.xnorB(m.var(4), m.var(5));
  const Bfv paired = fromChar(m, chi, vars);
  const unsigned separate[] = {0, 2, 4, 1, 3, 5};
  const Bfv separated = reorderComponents(paired, separate, vars);
  EXPECT_DOUBLE_EQ(separated.countStates(), paired.countStates());
  EXPECT_GE(separated.sharedSize(), paired.sharedSize());
}

}  // namespace
}  // namespace bfvr::bfv
