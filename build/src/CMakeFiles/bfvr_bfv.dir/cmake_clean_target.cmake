file(REMOVE_RECURSE
  "libbfvr_bfv.a"
)
