// Work-stealing fork/join pool behind the Manager's intra-operation
// parallelism (Config::threads > 1). Deliberately minimal, Sylvan-flavored:
//
//  * Tasks are STACK-ALLOCATED in the forking frame (ParTask below), pushed
//    by pointer onto the forker's deque, and always joined by that same
//    frame before it returns or unwinds (ForkGuard). There is therefore no
//    task ownership problem, no allocation on the fork path, and — the
//    property the Manager's sequential safe points rely on — the pool is
//    structurally quiescent whenever no public operation is running: a
//    pending task cannot outlive the operation that forked it.
//
//  * fork() pushes to the calling thread's own deque tail; join() pops its
//    own tail when the task is still there (the common case — runs it
//    inline, zero synchronization beyond the deque lock), and otherwise
//    HELPS: it steals and runs other pending tasks until its own task is
//    done, so a joining thread never blocks while work exists.
//
//  * Idle workers spin briefly, then park on a condition variable with an
//    untimed wait; fork() only signals when a sleeper is registered. The
//    register-then-check / publish-then-check protocol (seq_cst on
//    sleepers_/pending_, notify under the mutex) makes the wakeup
//    race-free, so parked workers consume no CPU and the steady-state
//    fork cost is a locked push plus two atomics.
//
//  * Exceptions (node budget, cancellation) are captured per task and
//    rethrown at join; helping frames swallow nothing. The Manager's
//    cancellation poll runs inside allocNode on every thread, so a cancel
//    interrupts all branches of a parallel apply within one stride.
//
// One pool serves exactly one Manager; worker threads bind their OpStats
// slot (Manager::tl_stats_) once at startup and must never touch another
// manager.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "bdd/bdd.hpp"

namespace bfvr::bdd {

/// One forked subproblem. Plain data filled by the forker; `result`
/// (and `result2` for the dual-cofactor kind) is written by whoever runs
/// the task, before the release-store of `state` that join() acquires.
struct ParTask {
  enum Kind : std::uint8_t {
    kAnd,
    kXor,
    kIte,
    kExists,
    kAndExists,
    kCof2,
    kInvoke,
  };
  enum State : int { kQueued = 0, kRunning = 1, kDone = 2 };

  Manager* mgr = nullptr;
  Edge a = 0, b = 0, c = 0;
  std::uint32_t var = 0;
  Kind kind = kAnd;
  std::uint8_t depth = 0;
  Edge result = 0;
  Edge result2 = 0;
  const std::function<void()>* fn = nullptr;  // kInvoke body
  std::exception_ptr error;
  std::atomic<int> state{kQueued};
};

class ParPool {
 public:
  /// Spawns `workers` threads (may be 0: the owner thread still forks and
  /// immediately joins inline, which keeps the code paths testable).
  ParPool(Manager& mgr, unsigned workers);
  ~ParPool();
  ParPool(const ParPool&) = delete;
  ParPool& operator=(const ParPool&) = delete;

  /// Make `t` stealable. The task must stay alive until joined.
  void fork(ParTask& t);
  /// Wait for `t`, running it inline or helping with other tasks; rethrows
  /// the task's captured exception.
  void join(ParTask& t);
  /// join() that swallows the task's exception — used on unwind paths where
  /// another exception is already in flight.
  void joinQuiet(ParTask& t) noexcept;

  /// True while fewer tasks are pending than there are threads to eat them
  /// — the kernels' fork gate. One relaxed load.
  bool hungry() const noexcept {
    return pending_.load(std::memory_order_relaxed) < hungry_limit_;
  }

  /// Run the bodies concurrently: fns[0] inline on the caller, the rest as
  /// tasks. First captured exception rethrown after ALL bodies finished.
  void invoke(std::span<const std::function<void()>> fns);

  unsigned workers() const noexcept { return workers_; }
  /// Worker stats slots are 1-based (slot 0 is unused: the owner thread
  /// writes Manager::stats_ directly).
  OpStats& slotStats(unsigned i) noexcept { return slots_[i].stats; }
  std::size_t pendingTasks() const noexcept {
    return static_cast<std::size_t>(pending_.load(std::memory_order_relaxed));
  }
  std::uint64_t spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }
  std::uint64_t stolen() const noexcept {
    return stolen_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) WorkerSlot {
    OpStats stats;
  };
  struct alignas(64) Deque {
    detail::Spinlock lk;
    std::vector<ParTask*> q;  // tail = back (owner side), steal from front
  };

  /// Deque index of the calling thread: its worker id on pool threads, 0
  /// (the owner's deque) everywhere else.
  unsigned selfId() const noexcept {
    return tl_pool_ == this ? tl_id_ : 0;
  }
  /// Steal one task (own deque included, others from the front) and run
  /// it; false when nothing was pending.
  bool runOne(unsigned self);
  void execute(ParTask& t) noexcept;
  void workerMain(unsigned id);

  Manager& mgr_;
  unsigned workers_;
  int hungry_limit_;
  std::unique_ptr<Deque[]> deques_;   // workers_ + 1 (index 0 = owner)
  std::unique_ptr<WorkerSlot[]> slots_;
  std::vector<std::thread> threads_;
  std::atomic<int> pending_{0};
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<int> sleepers_{0};
  std::mutex mu_;
  std::condition_variable cv_;

  inline static thread_local ParPool* tl_pool_ = nullptr;
  inline static thread_local unsigned tl_id_ = 0;
};

/// Fork-with-guaranteed-join. Joins quietly on unwind (an exception from
/// the inline branch must not orphan the forked task — the pool would
/// dangle a pointer into this dead frame), loudly via join().
class ForkGuard {
 public:
  ForkGuard(ParPool& pool, ParTask& t) : pool_(pool), task_(t) {
    pool_.fork(task_);
  }
  ~ForkGuard() {
    if (!joined_) pool_.joinQuiet(task_);
  }
  ForkGuard(const ForkGuard&) = delete;
  ForkGuard& operator=(const ForkGuard&) = delete;

  /// Join and return the task's primary result.
  Edge join() {
    joined_ = true;
    pool_.join(task_);
    return task_.result;
  }
  /// Secondary result (valid after join; kCof2 only).
  Edge result2() const noexcept { return task_.result2; }

 private:
  ParPool& pool_;
  ParTask& task_;
  bool joined_ = false;
};

}  // namespace bfvr::bdd
